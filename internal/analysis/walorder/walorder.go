// Package walorder enforces the WAL ordering protocol (PR 6): recovery
// replays the log in LSN order, so LSN order must equal apply order. The
// facade guarantees that by appending to the WAL and enqueueing into the
// update pipeline under one walMu critical section — two writers can never
// interleave append and enqueue.
//
// Within each function of the facade package the analyzer runs a small
// abstract interpretation over the statement list (tracking walMu held,
// append-under-the-current-hold, and wal-nil-ness refined by `if db.wal ==
// nil` branches) and reports:
//
//   - a pipeline Enqueue not dominated by a WAL append under a still-held
//     walMu, unless the path is dominated by a `wal == nil` check (the
//     no-WAL fast path needs no ordering);
//   - a WAL Append while walMu is not held.
//
// Suppress a reviewed exception with //deepdb:walordered <reason>.
package walorder

import (
	"go/ast"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "walorder",
	Doc: "requires pipeline enqueues to be dominated by a WAL append under walMu " +
		"(or a wal == nil check), and WAL appends to happen under walMu",
	Scope: map[string]bool{"repro/deepdb": true},
	Run:   run,
}

// state is the abstract machine state at one program point.
type state struct {
	muHeld   bool
	appended bool // an Append happened under the current walMu hold
	walNil   int8 // 0 unknown, 1 known nil, 2 known non-nil
}

func merge(a, b state) state {
	out := state{
		muHeld:   a.muHeld && b.muHeld,
		appended: a.appended && b.appended,
	}
	if a.walNil == b.walNil {
		out.walNil = a.walNil
	}
	return out
}

func run(pass *analysis.Pass) error {
	w := &walker{pass: pass}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				w.block(fn.Body.List, state{})
			}
		}
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
}

// block interprets a statement list from st, returning the fall-through
// state and whether every path through the list terminates (returns).
func (w *walker) block(stmts []ast.Stmt, st state) (state, bool) {
	for _, s := range stmts {
		var terminated bool
		st, terminated = w.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (w *walker) stmt(s ast.Stmt, st state) (state, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return w.scanExprs(st, s.X), false
	case *ast.AssignStmt:
		st = w.scanExprs(st, s.Rhs...)
		return w.scanExprs(st, s.Lhs...), false
	case *ast.ReturnStmt:
		return w.scanExprs(st, s.Results...), true
	case *ast.DeferStmt:
		// A deferred walMu.Unlock keeps the lock held for the rest of the
		// function body, so it does not change the current state; other
		// deferred calls are scanned for violations with the entry state.
		if w.isMuOp(s.Call, "Unlock") {
			return st, false
		}
		return w.scanExprs(st, s.Call), false
	case *ast.GoStmt:
		// A goroutine body starts with no lock and no append history.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.block(lit.Body.List, state{})
			return st, false
		}
		return w.scanExprs(st, s.Call), false
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		st = w.scanExprs(st, s.Cond)
		thenSt, elseSt := st, st
		if nilness := w.walNilCond(s.Cond); nilness != 0 {
			thenSt.walNil = nilness
			elseSt.walNil = 3 - nilness // the complementary fact
		}
		thenOut, thenTerm := w.block(s.Body.List, thenSt)
		elseOut, elseTerm := elseSt, false
		if s.Else != nil {
			elseOut, elseTerm = w.stmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return merge(thenOut, elseOut), false
		}
	case *ast.BlockStmt:
		return w.block(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			st = w.scanExprs(st, s.Cond)
		}
		bodyOut, _ := w.block(s.Body.List, st)
		if s.Post != nil {
			bodyOut, _ = w.stmt(s.Post, bodyOut)
		}
		// The loop may run zero or many times: keep only facts that hold
		// both ways.
		return merge(st, bodyOut), false
	case *ast.RangeStmt:
		st = w.scanExprs(st, s.X)
		bodyOut, _ := w.block(s.Body.List, st)
		return merge(st, bodyOut), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			st = w.scanExprs(st, s.Tag)
		}
		return w.cases(s.Body, st)
	case *ast.TypeSwitchStmt:
		return w.cases(s.Body, st)
	case *ast.SelectStmt:
		return w.cases(s.Body, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.IncDecStmt:
		return w.scanExprs(st, s.X), false
	case *ast.SendStmt:
		st = w.scanExprs(st, s.Value)
		return w.scanExprs(st, s.Chan), false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					st = w.scanExprs(st, vs.Values...)
				}
			}
		}
		return st, false
	}
	return st, false
}

// cases interprets each case clause independently from the entry state and
// merges the fall-through states. Without a default clause the switch
// itself may fall through with the entry state, so that is merged in too;
// termination is never claimed (conservative).
func (w *walker) cases(body *ast.BlockStmt, st state) (state, bool) {
	out := st
	first := true
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			hasDefault = hasDefault || c.List == nil
		case *ast.CommClause:
			stmts = c.Body
			hasDefault = hasDefault || c.Comm == nil
		default:
			continue
		}
		caseOut, term := w.block(stmts, st)
		if term {
			continue
		}
		if first {
			out, first = caseOut, false
		} else {
			out = merge(out, caseOut)
		}
	}
	if !hasDefault {
		out = merge(out, st)
	}
	return out, false
}

// scanExprs folds the effect of every call in the expressions (in source
// order) into the state, reporting violations as they are found. Function
// literals are interpreted with a fresh state: they may run at any time.
func (w *walker) scanExprs(st state, exprs ...ast.Expr) state {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				w.block(lit.Body.List, state{})
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Arguments evaluate before the call itself.
			for _, arg := range call.Args {
				st = w.scanExprs(st, arg)
			}
			st = w.call(call, st)
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				st = w.scanExprs(st, sel.X)
			}
			return false
		})
	}
	return st
}

// call applies one call's effect to the state.
func (w *walker) call(call *ast.CallExpr, st state) state {
	switch {
	case w.isMuOp(call, "Lock"):
		st.muHeld = true
		st.appended = false
	case w.isMuOp(call, "Unlock"):
		st.muHeld = false
		st.appended = false
	case w.isWALAppend(call):
		if !st.muHeld && !w.pass.Suppressed(call.Pos(), "walordered") {
			w.pass.Reportf(call.Pos(), "WAL append outside the walMu critical section: concurrent writers could interleave append and enqueue, breaking LSN order == apply order")
		}
		if st.muHeld {
			st.appended = true
		}
	case w.isEnqueue(call):
		if st.walNil != 1 && !(st.muHeld && st.appended) && !w.pass.Suppressed(call.Pos(), "walordered") {
			w.pass.Reportf(call.Pos(), "pipeline enqueue not dominated by a WAL append under walMu (or a wal == nil check): a crash would replay a different order than was applied")
		}
	}
	return st
}

// isMuOp matches walMu.Lock / walMu.Unlock: a Lock/Unlock method call whose
// receiver chain ends in a sync.Mutex field or variable named walMu.
func (w *walker) isMuOp(call *ast.CallExpr, op string) bool {
	recv, method := analysis.MethodCall(call)
	if method != op {
		return false
	}
	name := ""
	switch r := recv.(type) {
	case *ast.Ident:
		name = r.Name
	case *ast.SelectorExpr:
		name = r.Sel.Name
	}
	if name != "walMu" {
		return false
	}
	return analysis.NamedType(w.pass.TypesInfo.TypeOf(recv), "sync", "Mutex")
}

// isWALAppend matches Append calls on internal/wal.Log.
func (w *walker) isWALAppend(call *ast.CallExpr) bool {
	recv, method := analysis.MethodCall(call)
	if method != "Append" {
		return false
	}
	return analysis.NamedType(w.pass.TypesInfo.TypeOf(recv), "internal/wal", "Log")
}

// isEnqueue matches Enqueue calls on internal/pipeline.Pipeline.
func (w *walker) isEnqueue(call *ast.CallExpr) bool {
	recv, method := analysis.MethodCall(call)
	if method != "Enqueue" {
		return false
	}
	return analysis.NamedType(w.pass.TypesInfo.TypeOf(recv), "internal/pipeline", "Pipeline")
}

// walNilCond recognizes `X.wal == nil` (returns 1) and `X.wal != nil`
// (returns 2) where the wal field is an internal/wal.Log pointer.
func (w *walker) walNilCond(cond ast.Expr) int8 {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return 0
	}
	var other ast.Expr
	if isNil(be.X) {
		other = be.Y
	} else if isNil(be.Y) {
		other = be.X
	} else {
		return 0
	}
	sel, ok := other.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "wal" {
		return 0
	}
	if !analysis.NamedType(w.pass.TypesInfo.TypeOf(other), "internal/wal", "Log") {
		return 0
	}
	switch be.Op.String() {
	case "==":
		return 1
	case "!=":
		return 2
	}
	return 0
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
