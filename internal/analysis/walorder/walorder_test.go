package walorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/walorder"
)

func TestWalorder(t *testing.T) {
	analysistest.Run(t, "testdata", walorder.Analyzer, "repro/deepdb")
}
