// Package ctxloop enforces context propagation (PR 1) on the hot,
// data-proportional paths of the core libraries: an exported function whose
// body contains nested loops (loop-in-loop — the shape of row × column,
// group × branch, leaf × bin traversals) does work proportional to data
// size and must be cancellable. It must either accept a context.Context
// (cancellation can then be checked at whatever granularity fits) or carry
// a reviewed justification that its loops are bounded by metadata, not
// data:
//
//	//deepdb:nocancel <why the loops are small/bounded>
//
// placed directly above the declaration (the last doc-comment line works).
// Single, non-nested loops are deliberately not flagged: linear passes over
// already-materialized state finish fast, and flagging them would force a
// context parameter onto every accessor.
package ctxloop

import (
	"go/ast"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxloop",
	Doc: "flags exported functions with nested data loops that neither accept a " +
		"context.Context nor carry //deepdb:nocancel <reason>",
	Scope: map[string]bool{
		"repro/internal/spn":      true,
		"repro/internal/rspn":     true,
		"repro/internal/ensemble": true,
		"repro/internal/core":     true,
		"repro/internal/exact":    true,
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if !exportedRecv(fn) {
				continue
			}
			if hasCtxParam(pass, fn) || !hasNestedLoop(fn.Body) {
				continue
			}
			if pass.Suppressed(fn.Pos(), "nocancel") {
				continue
			}
			pass.Reportf(fn.Pos(), "exported %s has nested data loops but no way to cancel: accept a context.Context (and check it in the outer loop) or annotate //deepdb:nocancel <reason>", fn.Name.Name)
		}
	}
	return nil
}

// exportedRecv reports whether the function is reachable from outside the
// package: a plain function, or a method on an exported type.
func exportedRecv(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// hasCtxParam reports whether any parameter is a context.Context.
func hasCtxParam(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	for _, field := range fn.Type.Params.List {
		if analysis.IsContext(pass.TypesInfo.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// hasNestedLoop reports whether the body contains a loop lexically inside
// another loop. Function literals count toward their enclosing function:
// the work still happens on this call path.
func hasNestedLoop(body *ast.BlockStmt) bool {
	found := false
	depth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
			if depth >= 2 {
				found = true
				return false
			}
			// Visit children, then restore depth: ast.Inspect has no
			// post-visit hook per node type, so recurse manually.
			switch s := n.(type) {
			case *ast.ForStmt:
				inspectChildren(s.Body, walk)
			case *ast.RangeStmt:
				inspectChildren(s.Body, walk)
			}
			depth--
			return false
		}
		return true
	}
	inspectChildren(body, walk)
	return found
}

func inspectChildren(n ast.Node, walk func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil || m == n {
			return true
		}
		return walk(m)
	})
}
