package ctxloop_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxloop"
)

func TestCtxloop(t *testing.T) {
	analysistest.Run(t, "testdata", ctxloop.Analyzer, "repro/internal/spn")
}
