// Package spn is a ctxloop fixture: exported functions with and without
// nested data loops, context parameters, and nocancel suppressions.
package spn

import "context"

// NestedNoCtx does data-proportional nested work without a context.
func NestedNoCtx(rows [][]float64) float64 { // want `exported NestedNoCtx has nested data loops but no way to cancel`
	sum := 0.0
	for _, row := range rows {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// NestedWithCtx accepts a context: allowed.
func NestedWithCtx(ctx context.Context, rows [][]float64) (float64, error) {
	sum := 0.0
	for _, row := range rows {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for _, v := range row {
			sum += v
		}
	}
	return sum, nil
}

// SingleLoop has no nesting: allowed (linear passes finish fast).
func SingleLoop(vals []float64) float64 {
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum
}

// NestedInFuncLit hides the inner loop in a function literal; it still
// runs on this call path and must be counted.
func NestedInFuncLit(rows [][]float64) float64 { // want `exported NestedInFuncLit has nested data loops but no way to cancel`
	sum := 0.0
	for _, row := range rows {
		func() {
			for _, v := range row {
				sum += v
			}
		}()
	}
	return sum
}

// Annotated carries a justified nocancel: allowed.
//
//deepdb:nocancel fixture loops are bounded by a two-element literal
func Annotated(rows [][]float64) float64 {
	sum := 0.0
	for _, row := range rows {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// unexported nested loops are not flagged: the invariant governs the
// package's public surface.
func unexportedNested(rows [][]float64) float64 {
	sum := 0.0
	for _, row := range rows {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// hidden is an unexported receiver type: its exported methods are not
// reachable from outside the package, so they are not flagged.
type hidden struct{ rows [][]float64 }

// Sum is exported on an unexported type: allowed.
func (h *hidden) Sum() float64 {
	sum := 0.0
	for _, row := range h.rows {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// Public is an exported receiver type.
type Public struct{ rows [][]float64 }

// Sum on an exported type with nested loops and no ctx: flagged.
func (p *Public) Sum() float64 { // want `exported Sum has nested data loops but no way to cancel`
	sum := 0.0
	for _, row := range p.rows {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// SequentialLoops are not nested: allowed.
func SequentialLoops(a, b []float64) float64 {
	sum := 0.0
	for _, v := range a {
		sum += v
	}
	for _, v := range b {
		sum += v
	}
	return sum
}
