// Package deepdb is a snapdiscipline fixture: snapshot publication and
// mutation patterns in every shape the analyzer must flag, allow, or
// honor a suppression for. It imports the real ensemble package so the
// mutating/laundering method sets match production exactly.
package deepdb

import (
	"sync"
	"sync/atomic"

	"repro/internal/ensemble"
)

// snapshot mirrors the facade's immutable published view.
type snapshot struct {
	ens *ensemble.Ensemble
	gen uint64
}

// DB mirrors the facade's relevant fields.
type DB struct {
	applyMu sync.Mutex
	snap    atomic.Pointer[snapshot]
}

// newDB may Store: construction publishes the first snapshot.
func newDB(ens *ensemble.Ensemble) *DB {
	db := &DB{}
	db.snap.Store(&snapshot{ens: ens, gen: 1})
	return db
}

// publishLocked is the one publication point (caller holds applyMu).
func (db *DB) publishLocked(s *snapshot) {
	db.snap.Store(s)
}

// GoodRead goes through the single atomic Load.
func (db *DB) GoodRead() uint64 {
	return db.snap.Load().gen
}

// BadStoreElsewhere publishes outside publishLocked/newDB.
func (db *DB) BadStoreElsewhere(s *snapshot) {
	db.snap.Store(s) // want `snapshot published outside a construction/publication function`
}

// BadAddress leaks the atomic pointer itself.
func (db *DB) BadAddress() *atomic.Pointer[snapshot] {
	return &db.snap // want `direct use of the snap atomic pointer`
}

// BadSwap bypasses the single-publisher protocol.
func (db *DB) BadSwap(s *snapshot) *snapshot {
	return db.snap.Swap(s) // want `direct use of the snap atomic pointer`
}

// BadFieldWrite mutates a possibly published snapshot in place. Both the
// snapshot-immutability rule and the taint walk fire here.
func (db *DB) BadFieldWrite() {
	s := db.snap.Load()
	s.gen = 2 // want `write to field gen of a snapshot` `write through s mutates state reachable from a published snapshot`
}

// BadMutate calls a mutating ensemble method on snapshot-reached state.
func (db *DB) BadMutate() error {
	s := db.snap.Load()
	return s.ens.Insert("t", nil) // want `Insert called on an ensemble reached from a published snapshot`
}

// GoodClone launders through a CoW clone before mutating.
func (db *DB) GoodClone() error {
	s := db.snap.Load()
	clone := s.ens.CloneForUpdate(nil)
	if err := clone.Insert("t", nil); err != nil {
		return err
	}
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	db.publishLocked(&snapshot{ens: clone, gen: s.gen + 1})
	return nil
}

// GoodDrift reads the drift tracker through a snapshot: it is shared by
// pointer across clones by design, so taint stops at the field.
func (db *DB) GoodDrift() bool {
	s := db.snap.Load()
	d := s.ens.Drift
	return d != nil
}

// SuppressedStore carries a reviewed justification.
func (db *DB) SuppressedStore(s *snapshot) {
	//deepdb:snapshotsafe fixture demonstrates a reviewed direct store
	db.snap.Store(s)
}
