// Package shard is a snapdiscipline fixture for the sharded serving tier:
// each shard owns the same snapshot-behind-an-atomic-pointer shape as the
// facade, with newShard as its construction point. The analyzer must hold
// per-shard snapshot pointers to the identical Store-only-in-publish
// discipline.
package shard

import (
	"sync"
	"sync/atomic"

	"repro/internal/ensemble"
)

// snapshot mirrors a shard's immutable published view: the sub-ensemble,
// the publication counter and the stream-alignment token.
type snapshot struct {
	ens *ensemble.Ensemble
	gen uint64
	ops uint64
}

// Shard mirrors the relevant fields of the real shard.
type Shard struct {
	applyMu sync.Mutex
	snap    atomic.Pointer[snapshot]
}

// newShard may Store: construction publishes the first snapshot.
func newShard(ens *ensemble.Ensemble) *Shard {
	s := &Shard{}
	s.snap.Store(&snapshot{ens: ens})
	return s
}

// publishLocked is the one publication point (caller holds applyMu).
func (s *Shard) publishLocked(next *snapshot) {
	s.snap.Store(next)
}

// GoodView reads through the single atomic Load.
func (s *Shard) GoodView() (uint64, uint64) {
	sn := s.snap.Load()
	return sn.gen, sn.ops
}

// GoodApply launders the published ensemble through a CoW clone, then
// publishes the clone with the advanced ops token.
func (s *Shard) GoodApply(muts []ensemble.Mutation) error {
	cur := s.snap.Load()
	next := cur.ens.CloneForUpdate(muts)
	if _, err := next.Apply(muts); err != nil {
		return err
	}
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	s.publishLocked(&snapshot{ens: next, gen: cur.gen + 1, ops: cur.ops + uint64(len(muts))})
	return nil
}

// BadStoreElsewhere publishes outside newShard/publishLocked.
func (s *Shard) BadStoreElsewhere(next *snapshot) {
	s.snap.Store(next) // want `snapshot published outside a construction/publication function`
}

// BadOpsWrite advances the alignment token in place — a torn view for any
// router that already composed this snapshot.
func (s *Shard) BadOpsWrite() {
	sn := s.snap.Load()
	sn.ops++ // want `write to field ops of a snapshot` `write through sn mutates state reachable from a published snapshot`
}

// BadApplyInPlace mutates the published sub-ensemble under readers.
func (s *Shard) BadApplyInPlace(muts []ensemble.Mutation) error {
	sn := s.snap.Load()
	_, err := sn.ens.Apply(muts) // want `Apply called on an ensemble reached from a published snapshot`
	return err
}

// BadSwap bypasses the single-publisher protocol.
func (s *Shard) BadSwap(next *snapshot) *snapshot {
	return s.snap.Swap(next) // want `direct use of the snap atomic pointer`
}
