// Package snapdiscipline enforces the facade's snapshot-publication
// discipline (PR 5): serving state lives in immutable snapshots behind one
// atomic pointer, reads go through a single Load, and every mutation is
// applied to a copy-on-write clone and published — never written in place,
// because a published snapshot may be in the hands of any number of
// lock-free readers.
//
// Three rules, scoped to the facade package and to the sharded serving
// tier (internal/shard), whose per-shard snapshot pointers follow the
// same protocol:
//
//  1. The `snap` atomic.Pointer field may appear only as the receiver of
//     .Load() or .Store(…); and .Store is confined to the construction and
//     publication functions (newDB, newShard, publishLocked). Anything
//     else — taking
//     its address, copying it, Swap/CompareAndSwap — bypasses the
//     single-publisher protocol.
//  2. Fields of the snapshot struct are assigned only in composite
//     literals; a field write after construction mutates a possibly
//     published value under readers.
//  3. Known-mutating ensemble methods (Apply, Insert, Delete, AttachTables,
//     EnableDrift, CheckStaleness) must not be invoked on state reached
//     from a snapshot load; such values must be laundered through a
//     CoW clone (CloneForUpdate, CloneForStaleness, SwapMember) first.
//     The drift tracker is exempt: it is documented as shared by pointer
//     across clones with its own synchronization.
//
// Suppress a reviewed exception with //deepdb:snapshotsafe <reason>.
package snapdiscipline

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "snapdiscipline",
	Doc: "enforces snapshot discipline in the deepdb facade: atomic snapshot " +
		"loads only, no writes to published snapshots, mutations only through CoW clones",
	Scope: map[string]bool{
		"repro/deepdb":         true,
		"repro/internal/shard": true,
	},
	Run: run,
}

// storeAllowed lists the only functions that may publish (Store) a
// snapshot: construction (newDB for the facade, newShard for the sharded
// tier) and the one publication helper per package whose contract
// documents the applyMu requirement.
var storeAllowed = map[string]bool{"newDB": true, "newShard": true, "publishLocked": true}

// mutating are the *ensemble.Ensemble methods that change model state
// in place.
var mutating = map[string]bool{
	"Apply":          true,
	"Insert":         true,
	"Delete":         true,
	"AttachTables":   true,
	"EnableDrift":    true,
	"CheckStaleness": true,
}

// laundering are the Ensemble methods whose result is a fresh CoW clone —
// safe to mutate and publish.
var laundering = map[string]bool{
	"CloneForUpdate":    true,
	"CloneForStaleness": true,
	"SwapMember":        true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSnapAccess(pass, fn)
			checkSnapshotWrites(pass, fn)
			checkTaintedMutations(pass, fn)
		}
	}
	return nil
}

// isSnapField reports whether e selects a struct field named "snap" of type
// sync/atomic.Pointer[…].
func isSnapField(pass *analysis.Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "snap" {
		return false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	return analysis.NamedType(s.Type(), "sync/atomic", "Pointer")
}

// checkSnapAccess enforces rule 1.
func checkSnapAccess(pass *analysis.Pass, fn *ast.FuncDecl) {
	// Collect the parent of every snap-field selector to see how it is used.
	var stack []ast.Node
	ast.Inspect(fn, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		if !isSnapField(pass, nodeExpr(n)) {
			return true
		}
		// Walk up: the only legal enclosing shape is a call through a
		// .Load / .Store selector.
		if len(stack) >= 3 {
			if method, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok {
				if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == method {
					switch method.Sel.Name {
					case "Load":
						return true
					case "Store":
						if storeAllowed[fn.Name.Name] || pass.Suppressed(n.Pos(), "snapshotsafe") {
							return true
						}
						pass.Reportf(n.Pos(), "snapshot published outside a construction/publication function (newDB, newShard, publishLocked): call publishLocked (under applyMu) instead of %s.Store", render(nodeExpr(n)))
						return true
					}
				}
			}
		}
		if pass.Suppressed(n.Pos(), "snapshotsafe") {
			return true
		}
		pass.Reportf(n.Pos(), "direct use of the snap atomic pointer (only %s.Load() and publication via publishLocked are allowed)", render(nodeExpr(n)))
		return true
	})
}

func nodeExpr(n ast.Node) ast.Expr {
	e, _ := n.(ast.Expr)
	return e
}

// checkSnapshotWrites enforces rule 2: no field assignment on a value of
// the package's snapshot struct type outside composite literals.
func checkSnapshotWrites(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn, func(n ast.Node) bool {
		var lhss []ast.Expr
		switch st := n.(type) {
		case *ast.AssignStmt:
			lhss = st.Lhs
		case *ast.IncDecStmt:
			lhss = []ast.Expr{st.X}
		default:
			return true
		}
		for _, lhs := range lhss {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if !isSnapshotType(pass, pass.TypesInfo.TypeOf(sel.X)) {
				continue
			}
			if pass.Suppressed(lhs.Pos(), "snapshotsafe") {
				continue
			}
			pass.Reportf(lhs.Pos(), "write to field %s of a snapshot after construction: snapshots are immutable once published — build a new one and publish it via publishLocked", sel.Sel.Name)
		}
		return true
	})
}

// isSnapshotType matches the scoped package's own struct type named
// "snapshot" (by convention the immutable published view), through
// pointers.
func isSnapshotType(pass *analysis.Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == "snapshot" && n.Obj().Pkg() == pass.Pkg
}

// checkTaintedMutations enforces rule 3 with a small forward taint walk
// per function: snapshot-typed values (and ensembles/slices/fields reached
// from them) are tainted; clone calls launder; mutating ensemble methods
// and field/element writes on tainted values are flagged.
func checkTaintedMutations(pass *analysis.Pass, fn *ast.FuncDecl) {
	tainted := map[types.Object]bool{}

	var exprTainted func(e ast.Expr) bool
	exprTainted = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			if tainted[pass.TypesInfo.ObjectOf(e)] {
				return true
			}
		case *ast.ParenExpr:
			return exprTainted(e.X)
		case *ast.SelectorExpr:
			// The drift tracker is shared by pointer across clones by
			// design; taint stops there.
			if e.Sel.Name == "Drift" {
				return false
			}
			if exprTainted(e.X) {
				return true
			}
		case *ast.IndexExpr:
			return exprTainted(e.X)
		case *ast.StarExpr:
			return exprTainted(e.X)
		case *ast.CallExpr:
			recv, method := analysis.MethodCall(e)
			if method == "" {
				return false
			}
			if laundering[method] && isEnsemble(pass, e.Fun) {
				return false // fresh clone
			}
			// db.snap.Load() / db.snapshotNow() results are snapshots —
			// caught by the type check below via TypeOf.
			_ = recv
		}
		// Any expression of the snapshot type is by definition possibly
		// published.
		return isSnapshotType(pass, pass.TypesInfo.TypeOf(e))
	}

	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Propagate taint through simple assignments, then check
			// writes through tainted bases.
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						obj := pass.TypesInfo.ObjectOf(id)
						if obj != nil {
							tainted[obj] = exprTainted(n.Rhs[i])
						}
						continue
					}
					checkWrite(pass, n.Lhs[i], exprTainted)
				}
			} else {
				for _, lhs := range n.Lhs {
					if _, ok := lhs.(*ast.Ident); !ok {
						checkWrite(pass, lhs, exprTainted)
					}
				}
			}
		case *ast.IncDecStmt:
			if _, ok := n.X.(*ast.Ident); !ok {
				checkWrite(pass, n.X, exprTainted)
			}
		case *ast.CallExpr:
			recv, method := analysis.MethodCall(n)
			if method == "" || !mutating[method] || !isEnsemble(pass, n.Fun) {
				return true
			}
			if !exprTainted(recv) {
				return true
			}
			if pass.Suppressed(n.Pos(), "snapshotsafe") {
				return true
			}
			pass.Reportf(n.Pos(), "%s called on an ensemble reached from a published snapshot: clone it first (CloneForUpdate/CloneForStaleness) and publish the clone", method)
		}
		return true
	})
}

// checkWrite flags assignments whose destination is a selector or index
// chain rooted in a tainted value (a structure reachable from a published
// snapshot).
func checkWrite(pass *analysis.Pass, lhs ast.Expr, exprTainted func(ast.Expr) bool) {
	var base ast.Expr
	switch e := lhs.(type) {
	case *ast.SelectorExpr:
		base = e.X
	case *ast.IndexExpr:
		base = e.X
	case *ast.StarExpr:
		base = e.X
	default:
		return
	}
	if !exprTainted(base) {
		return
	}
	if pass.Suppressed(lhs.Pos(), "snapshotsafe") {
		return
	}
	pass.Reportf(lhs.Pos(), "write through %s mutates state reachable from a published snapshot; apply mutations to a CoW clone instead", render(base))
}

// isEnsemble reports whether the selector call's receiver is the
// internal/ensemble.Ensemble type.
func isEnsemble(pass *analysis.Pass, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return analysis.NamedType(pass.TypesInfo.TypeOf(sel.X), "internal/ensemble", "Ensemble")
}

func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return render(e.Fun) + "()"
	case *ast.IndexExpr:
		return render(e.X) + "[…]"
	}
	return "expression"
}
