package snapdiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/snapdiscipline"
)

func TestSnapdiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", snapdiscipline.Analyzer, "repro/deepdb")
}

func TestSnapdisciplineShard(t *testing.T) {
	analysistest.Run(t, "testdata", snapdiscipline.Analyzer, "repro/internal/shard")
}
