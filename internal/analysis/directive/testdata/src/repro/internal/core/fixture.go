// Package core is a directive fixture: well-formed, bare, and mistyped
// //deepdb: suppression comments. The diagnostics land on the directive
// comments themselves, so expectations use the block-comment form to
// share their line.
package core

// Valid carries a complete directive: no finding.
func Valid(m map[string]int) int {
	n := 0
	//deepdb:orderinvariant counting is order-free
	for range m {
		n++
	}
	return n
}

// Bare omits the mandatory justification.
func Bare(m map[string]int) int {
	n := 0
	/* want `needs a justification` */ //deepdb:orderinvariant
	for range m {
		n++
	}
	return n
}

// Typo uses an unknown directive name.
func Typo(m map[string]int) int {
	n := 0
	/* want `unknown directive` */ //deepdb:orderinvarient typo in the name
	for range m {
		n++
	}
	return n
}
