// Package directive validates the //deepdb: suppression-comment grammar
// itself: every directive must use a known name and carry a non-empty
// justification. A malformed directive does not suppress anything, so
// without this check a typo ("//deepdb:orderinvarient") would silently turn
// into an unsuppressed finding far from the typo — or worse, a bare
// directive would look like a suppression while the reviewed justification
// the grammar demands is missing.
package directive

import (
	"sort"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "directive",
	Doc: "validates //deepdb:<name> <justification> suppression comments: " +
		"known name, non-empty justification",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, d := range pass.Directives.All() {
		if !analysis.DirectiveNames[d.Name] {
			pass.Reportf(d.Pos, "unknown directive //deepdb:%s (valid: %s)", d.Name, validNames())
			continue
		}
		if d.Justification == "" {
			pass.Reportf(d.Pos, "//deepdb:%s needs a justification: //deepdb:%s <why this is safe>", d.Name, d.Name)
		}
	}
	return nil
}

func validNames() string {
	names := make([]string, 0, len(analysis.DirectiveNames))
	for n := range analysis.DirectiveNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
