package directive_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/directive"
)

func TestDirective(t *testing.T) {
	analysistest.Run(t, "testdata", directive.Analyzer, "repro/internal/core")
}
