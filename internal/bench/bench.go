// Package bench regenerates every table and figure of the paper's
// evaluation (Section 6) on the synthetic equivalents of the paper's data
// sets. Each runner returns a Report whose rows mirror the corresponding
// paper exhibit, alongside the paper's published numbers where applicable,
// so EXPERIMENTS.md can record paper-vs-measured side by side.
//
// Absolute numbers are not expected to match (different data scale and
// hardware); the shapes — who wins, by roughly what factor, where error
// grows — are the reproduction target.
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/ensemble"
	"repro/internal/exact"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/table"
	"repro/internal/workload"
)

// Report is one regenerated exhibit.
type Report struct {
	ID    string // "table1", "fig7", ...
	Title string
	Rows  []string
	// Metrics holds machine-readable headline numbers for tests and
	// EXPERIMENTS.md.
	Metrics map[string]float64
}

func (r *Report) addRow(format string, args ...interface{}) {
	r.Rows = append(r.Rows, fmt.Sprintf(format, args...))
}

func (r *Report) metric(key string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[key] = v
}

// String renders the report for terminal output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, row := range r.Rows {
		b.WriteString(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// Scale controls experiment sizes; Small keeps every runner in seconds for
// tests, Full is the default for the experiments binary.
type Scale struct {
	IMDbTitles   int
	FlightsRows  int
	SSBFactor    float64
	MaxSamples   int
	TrainQueries int
	GridPerCell  int
	SynthQueries int
}

// SmallScale is used by unit tests and -short benchmarks.
func SmallScale() Scale {
	return Scale{IMDbTitles: 2000, FlightsRows: 20000, SSBFactor: 0.005,
		MaxSamples: 15000, TrainQueries: 300, GridPerCell: 4, SynthQueries: 40}
}

// FullScale is used by cmd/experiments.
func FullScale() Scale {
	return Scale{IMDbTitles: 8000, FlightsRows: 80000, SSBFactor: 0.02,
		MaxSamples: 40000, TrainQueries: 800, GridPerCell: 12, SynthQueries: 200}
}

// fixtures lazily shares the expensive artifacts across runners.
type fixtures struct {
	scale Scale

	imdbOnce sync.Once
	imdbS    *schema.Schema
	imdbT    map[string]*table.Table
	imdbO    *exact.Engine
	imdbEns  *ensemble.Ensemble
	imdbEng  *core.Engine
	imdbErr  error

	flightsOnce sync.Once
	flightsS    *schema.Schema
	flightsT    map[string]*table.Table
	flightsO    *exact.Engine
	flightsEns  *ensemble.Ensemble
	flightsEng  *core.Engine
	flightsErr  error

	ssbOnce sync.Once
	ssbS    *schema.Schema
	ssbT    map[string]*table.Table
	ssbO    *exact.Engine
	ssbEns  *ensemble.Ensemble
	ssbEng  *core.Engine
	ssbErr  error
}

// Suite runs experiments over shared fixtures.
type Suite struct {
	f *fixtures
}

// NewSuite creates a suite at the given scale.
func NewSuite(scale Scale) *Suite {
	return &Suite{f: &fixtures{scale: scale}}
}

func ensembleConfig(maxSamples int, budget float64) ensemble.Config {
	cfg := ensemble.DefaultConfig()
	cfg.MaxSamples = maxSamples
	cfg.BudgetFactor = budget
	return cfg
}

func (f *fixtures) imdb() (*schema.Schema, map[string]*table.Table, *exact.Engine, *core.Engine, error) {
	f.imdbOnce.Do(func() {
		f.imdbS, f.imdbT = datagen.IMDb(datagen.IMDbConfig{Titles: f.scale.IMDbTitles, Seed: 1})
		f.imdbO = exact.New(f.imdbS, f.imdbT)
		ens, err := ensemble.Build(context.Background(), f.imdbS, f.imdbT, ensembleConfig(f.scale.MaxSamples, 0.5))
		if err != nil {
			f.imdbErr = err
			return
		}
		f.imdbEns = ens
		f.imdbEng = core.New(ens)
	})
	return f.imdbS, f.imdbT, f.imdbO, f.imdbEng, f.imdbErr
}

func (f *fixtures) flights() (*schema.Schema, map[string]*table.Table, *exact.Engine, *core.Engine, error) {
	f.flightsOnce.Do(func() {
		f.flightsS, f.flightsT = datagen.Flights(datagen.FlightsConfig{Rows: f.scale.FlightsRows, Seed: 2})
		f.flightsO = exact.New(f.flightsS, f.flightsT)
		ens, err := ensemble.Build(context.Background(), f.flightsS, f.flightsT, ensembleConfig(f.scale.MaxSamples, 0.5))
		if err != nil {
			f.flightsErr = err
			return
		}
		f.flightsEns = ens
		f.flightsEng = core.New(ens)
	})
	return f.flightsS, f.flightsT, f.flightsO, f.flightsEng, f.flightsErr
}

func (f *fixtures) ssb() (*schema.Schema, map[string]*table.Table, *exact.Engine, *core.Engine, error) {
	f.ssbOnce.Do(func() {
		f.ssbS, f.ssbT = datagen.SSB(datagen.SSBConfig{ScaleFactor: f.scale.SSBFactor, Seed: 3})
		f.ssbO = exact.New(f.ssbS, f.ssbT)
		ens, err := ensemble.Build(context.Background(), f.ssbS, f.ssbT, ensembleConfig(f.scale.MaxSamples, 0.5))
		if err != nil {
			f.ssbErr = err
			return
		}
		f.ssbEns = ens
		f.ssbEng = core.New(ens)
	})
	return f.ssbS, f.ssbT, f.ssbO, f.ssbEng, f.ssbErr
}

// ---- shared helpers ----

// qErrorStats evaluates a named workload against both systems and returns
// per-query q-errors.
func qErrors(oracle *exact.Engine, estimate func(query.Query) (float64, error), queries []workload.Named) ([]float64, error) {
	var out []float64
	for _, n := range queries {
		truth, err := oracle.Cardinality(n.Query)
		if err != nil {
			return nil, fmt.Errorf("%s: truth: %w", n.Label, err)
		}
		est, err := estimate(n.Query)
		if err != nil {
			return nil, fmt.Errorf("%s: estimate: %w", n.Label, err)
		}
		out = append(out, query.QError(est, truth))
	}
	return out, nil
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	idx := int(p * float64(len(cp)-1))
	return cp[idx]
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func medianOf(xs []float64) float64 { return percentile(xs, 0.5) }

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
