package bench

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The bench package's own tests run a subset of the experiment runners at a
// reduced scale and assert the headline *shapes* the paper reports — who
// wins and roughly by how much — not absolute numbers.

var (
	testSuiteOnce sync.Once
	testSuite     *Suite
)

func getSuite() *Suite {
	testSuiteOnce.Do(func() {
		sc := SmallScale()
		// Shrink further: these tests only check shapes.
		sc.IMDbTitles = 1500
		sc.FlightsRows = 10000
		sc.SSBFactor = 0.003
		sc.TrainQueries = 150
		sc.SynthQueries = 20
		sc.GridPerCell = 2
		testSuite = NewSuite(sc)
	})
	return testSuite
}

func TestFigure1Shape(t *testing.T) {
	rep, err := getSuite().RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	// DeepDB must beat MCSN at every unseen join size (the headline claim).
	for _, nt := range []string{"4", "5", "6"} {
		dd := rep.Metrics["deepdb_"+nt]
		mc := rep.Metrics["mcsn_"+nt]
		if dd >= mc {
			t.Errorf("join size %s: DeepDB %.2f not better than MCSN %.2f", nt, dd, mc)
		}
		if dd > 3 {
			t.Errorf("join size %s: DeepDB median %.2f too high", nt, dd)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	rep, err := getSuite().RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	dd := rep.Metrics["deepdbours_median"]
	if dd > 2 {
		t.Errorf("DeepDB JOB-light median %.2f, want < 2 (paper: 1.27)", dd)
	}
	// DeepDB's tail must beat the workload-driven model's and random
	// sampling's.
	if rep.Metrics["deepdbours_p95"] >= rep.Metrics["mcsn_p95"] {
		t.Errorf("DeepDB p95 %.2f not better than MCSN %.2f",
			rep.Metrics["deepdbours_p95"], rep.Metrics["mcsn_p95"])
	}
	if rep.Metrics["deepdbours_p95"] >= rep.Metrics["randomsampling_p95"] {
		t.Errorf("DeepDB p95 %.2f not better than random sampling %.2f",
			rep.Metrics["deepdbours_p95"], rep.Metrics["randomsampling_p95"])
	}
}

func TestTable2UpdatesKeepAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("update sweep is slow")
	}
	s := getSuite()
	med0, _, _, err := s.updatesRun("random", 0)
	if err != nil {
		t.Fatal(err)
	}
	med40, _, _, err := s.updatesRun("random", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim: updates do not blow up the error (1.22 -> 1.37).
	if med40 > med0*2.5 {
		t.Errorf("median after 40%% updates %.2f vs %.2f before: degraded too much", med40, med0)
	}
}

func TestFigure12Shape(t *testing.T) {
	rep, err := getSuite().RunFigure12()
	if err != nil {
		t.Fatal(err)
	}
	// DBEst's cumulative time must be monotonically non-decreasing across
	// queries and grow over the workload (new templates keep appearing).
	prev := -1.0
	grew := false
	for _, row := range rep.Rows[1:] {
		fields := strings.Fields(row)
		if len(fields) < 3 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		if v < prev {
			t.Errorf("DBEst cumulative time decreased: %v after %v", v, prev)
		}
		if v > prev {
			grew = true
		}
		prev = v
	}
	if !grew {
		t.Error("DBEst cumulative time never grew")
	}
}

func TestFigure13Shape(t *testing.T) {
	rep, err := getSuite().RunFigure13()
	if err != nil {
		t.Fatal(err)
	}
	// DeepDB's RMSE must be within a small factor of the trained models on
	// the strongly-determined targets (the "competitive" claim).
	for _, target := range []string{"f_air_time", "f_taxi_in", "f_taxi_out"} {
		dd := rep.Metrics[target+"_deepdb"]
		tree := rep.Metrics[target+"_tree"]
		if dd > 3*tree {
			t.Errorf("%s: DeepDB RMSE %.2f vs tree %.2f — not competitive", target, dd, tree)
		}
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{ID: "x", Title: "t"}
	rep.addRow("hello %d", 42)
	rep.metric("m", 1)
	out := rep.String()
	if !strings.Contains(out, "hello 42") || !strings.Contains(out, "== x: t ==") {
		t.Fatalf("report rendering wrong: %q", out)
	}
}

func TestPercentileHelpers(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if m := medianOf(xs); m != 3 {
		t.Fatalf("median = %v", m)
	}
	if m := maxOf(xs); m != 5 {
		t.Fatalf("max = %v", m)
	}
	if p := percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile = %v", p)
	}
}
