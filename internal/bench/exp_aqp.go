package bench

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/workload"
)

// aqpSystem is anything that can answer an AQP query.
type aqpSystem interface {
	Name() string
	Execute(q query.Query) (query.Result, error)
}

// timedAQP runs one query against one system, returning the average
// relative error against the oracle and the latency. ok=false marks "no
// result" (the system produced no qualifying groups while the truth has
// some).
func timedAQP(sys aqpSystem, truth query.Result, q query.Query) (rel float64, latency time.Duration, ok bool, err error) {
	start := time.Now()
	res, err := sys.Execute(q)
	latency = time.Since(start)
	if err != nil {
		return 0, latency, false, err
	}
	if len(res.Groups) == 0 && len(truth.Groups) > 0 {
		return 0, latency, false, nil
	}
	return query.AvgRelativeError(res, truth), latency, true, nil
}

// RunFigure9 regenerates Figure 9: average relative error and latency on
// the Flights queries for VerdictDB, TABLESAMPLE and DeepDB.
func (s *Suite) RunFigure9() (*Report, error) {
	sc, tabs, oracle, eng, err := s.f.flights()
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig9", Title: "Flights AQP: avg relative Error and Latency (paper: DeepDB lowest error, <=31ms latency)"}
	verdict := baselines.NewVerdictDB(sc, tabs, 0.01, 5000, 71)
	tsample := baselines.NewTableSample(sc, tabs, 0.01, 72)
	deep := aqpAdapter{name: "DeepDB", exec: func(q query.Query) (query.Result, error) {
		res, err := eng.Execute(q)
		if err != nil {
			return query.Result{}, err
		}
		return res.ToResult(), nil
	}}
	systems := []aqpSystem{verdict, tsample, deep}
	rep.addRow("%-6s %-12s %12s %12s", "query", "system", "rel err %", "latency ms")
	for _, n := range workload.FlightsQueries() {
		truth, err := oracle.Execute(n.Query)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", n.Label, err)
		}
		for _, sys := range systems {
			rel, lat, ok, err := timedAQP(sys, truth, n.Query)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", n.Label, sys.Name(), err)
			}
			if !ok {
				rep.addRow("%-6s %-12s %12s %12.1f", n.Label, sys.Name(), "no result", ms(lat))
				continue
			}
			rep.addRow("%-6s %-12s %12.2f %12.1f", n.Label, sys.Name(), rel*100, ms(lat))
			rep.metric(n.Label+"_"+strings2key(sys.Name())+"_rel", rel*100)
			rep.metric(n.Label+"_"+strings2key(sys.Name())+"_ms", ms(lat))
		}
	}
	return rep, nil
}

// aqpAdapter lifts a closure into an aqpSystem.
type aqpAdapter struct {
	name string
	exec func(q query.Query) (query.Result, error)
}

func (a aqpAdapter) Name() string                                { return a.name }
func (a aqpAdapter) Execute(q query.Query) (query.Result, error) { return a.exec(q) }

// RunFigure10 regenerates Figure 10: relative errors on the SSB queries for
// VerdictDB, Wander Join, TABLESAMPLE and DeepDB, with "no result" marks.
func (s *Suite) RunFigure10() (*Report, error) {
	sc, tabs, oracle, eng, err := s.f.ssb()
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig10", Title: "SSB AQP: avg relative Error (paper: DeepDB < 6% everywhere; samplers often >100% or no result)"}
	verdict := baselines.NewVerdictDB(sc, tabs, 0.01, 20000, 81)
	tsample := baselines.NewTableSample(sc, tabs, 0.01, 82)
	wander := baselines.NewWanderJoin(sc, tabs, 3000, 83)
	deep := aqpAdapter{name: "DeepDB", exec: func(q query.Query) (query.Result, error) {
		res, err := eng.Execute(q)
		if err != nil {
			return query.Result{}, err
		}
		return res.ToResult(), nil
	}}
	systems := []aqpSystem{verdict, wander, tsample, deep}
	rep.addRow("%-6s %-12s %12s %12s", "query", "system", "rel err %", "latency ms")
	for _, n := range workload.SSBQueries() {
		truth, err := oracle.Execute(n.Query)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", n.Label, err)
		}
		for _, sys := range systems {
			rel, lat, ok, err := timedAQP(sys, truth, n.Query)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", n.Label, sys.Name(), err)
			}
			if !ok {
				rep.addRow("%-6s %-12s %12s %12.1f", n.Label, sys.Name(), "no result", ms(lat))
				rep.metric(n.Label+"_"+strings2key(sys.Name())+"_noresult", 1)
				continue
			}
			rep.addRow("%-6s %-12s %12.2f %12.1f", n.Label, sys.Name(), rel*100, ms(lat))
			rep.metric(n.Label+"_"+strings2key(sys.Name())+"_rel", rel*100)
		}
	}
	return rep, nil
}

// RunFigure11 regenerates Figure 11: DeepDB's predicted relative confidence
// interval length versus the sample-based ground truth, on Flights and SSB.
func (s *Suite) RunFigure11() (*Report, error) {
	rep := &Report{ID: "fig11", Title: "Relative Confidence Interval Length: sample-based vs DeepDB (paper: close except F5.2-style sums)"}
	rep.addRow("%-6s %16s %12s", "query", "sample-based %", "DeepDB %")
	run := func(getter func() (sRes *suiteAQP, err error), queries []workload.Named) error {
		sa, err := getter()
		if err != nil {
			return err
		}
		for _, n := range queries {
			if len(n.Query.GroupBy) > 0 {
				// The figure reports ungrouped aggregates; grouped queries
				// are evaluated on their ungrouped core.
				n.Query.GroupBy = nil
			}
			truthCI, enough, err := sa.sampleCI.RelativeCILength(n.Query)
			if err != nil {
				return fmt.Errorf("%s: %w", n.Label, err)
			}
			if !enough {
				rep.addRow("%-6s %16s %12s", n.Label, "(<10 samples)", "-")
				continue
			}
			res, err := sa.eng.Execute(n.Query)
			if err != nil {
				return fmt.Errorf("%s: %w", n.Label, err)
			}
			if len(res.Groups) == 0 || res.Groups[0].Estimate.Value == 0 {
				rep.addRow("%-6s %16.2f %12s", n.Label, truthCI*100, "no result")
				continue
			}
			g := res.Groups[0]
			deepCI := (g.Estimate.Value - g.CILow) / g.Estimate.Value
			rep.addRow("%-6s %16.2f %12.2f", n.Label, truthCI*100, deepCI*100)
			rep.metric(n.Label+"_sample", truthCI*100)
			rep.metric(n.Label+"_deepdb", deepCI*100)
		}
		return nil
	}
	if err := run(s.flightsAQP, workload.FlightsQueries()); err != nil {
		return nil, err
	}
	if err := run(s.ssbAQP, workload.SSBQueries()); err != nil {
		return nil, err
	}
	return rep, nil
}

// suiteAQP bundles an engine with a sample-based CI oracle.
type suiteAQP struct {
	eng      *core.Engine
	sampleCI *baselines.SampleBasedCI
}

func (s *Suite) flightsAQP() (*suiteAQP, error) {
	sc, tabs, _, eng, err := s.f.flights()
	if err != nil {
		return nil, err
	}
	return &suiteAQP{
		eng:      eng,
		sampleCI: baselines.NewSampleBasedCI(sc, tabs, s.f.scale.MaxSamples, 91),
	}, nil
}

func (s *Suite) ssbAQP() (*suiteAQP, error) {
	sc, tabs, _, eng, err := s.f.ssb()
	if err != nil {
		return nil, err
	}
	return &suiteAQP{
		eng:      eng,
		sampleCI: baselines.NewSampleBasedCI(sc, tabs, s.f.scale.MaxSamples, 92),
	}, nil
}

// RunFigure12 regenerates Figure 12: cumulative training time of DBEst's
// per-query models vs DeepDB's one-time ensemble over the SSB queries.
func (s *Suite) RunFigure12() (*Report, error) {
	sc, tabs, _, _, err := s.f.ssb()
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig12", Title: "Cumulative Training Time: DBEst per-query models vs DeepDB one-time ensemble"}
	dbest := baselines.NewDBEst(sc, tabs, 10000)
	deepMS := ms(s.f.ssbEns.BuildTime)
	rep.addRow("%-6s %16s %16s", "query", "DBEst cum ms", "DeepDB cum ms")
	for _, n := range workload.SSBQueries() {
		if _, err := dbest.Prepare(n.Query); err != nil {
			return nil, fmt.Errorf("%s: %w", n.Label, err)
		}
		rep.addRow("%-6s %16.0f %16.0f", n.Label, ms(dbest.CumulativeTraining), deepMS)
		rep.metric(n.Label+"_dbest_ms", ms(dbest.CumulativeTraining))
	}
	rep.metric("deepdb_ms", deepMS)
	return rep, nil
}
