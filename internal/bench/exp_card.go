package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/ensemble"
	"repro/internal/exact"
	"repro/internal/query"
	"repro/internal/table"
	"repro/internal/workload"
)

// trainMCSN builds the workload-driven baseline on <=3-join training
// queries, the setup of Section 6.1.
func (s *Suite) trainMCSN() (*baselines.MCSN, error) {
	sc, tabs, oracle, _, err := s.f.imdb()
	if err != nil {
		return nil, err
	}
	train := workload.SyntheticIMDb(tabs, s.f.scale.TrainQueries, 2, 3, 77)
	var qs []query.Query
	for _, n := range train {
		qs = append(qs, n.Query)
	}
	return baselines.NewMCSN(sc, tabs, qs, oracle.Cardinality, baselines.DefaultMCSNConfig())
}

// RunTable1 regenerates Table 1: JOB-light q-errors for DeepDB, MCSN,
// Postgres, IBJS and random sampling.
func (s *Suite) RunTable1() (*Report, error) {
	sc, tabs, oracle, eng, err := s.f.imdb()
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "table1", Title: "Estimation Errors for the JOB-light Benchmark"}
	queries := workload.JOBLight(tabs, 5)

	mcsn, err := s.trainMCSN()
	if err != nil {
		return nil, err
	}
	pg, err := baselines.NewPostgres(sc, tabs)
	if err != nil {
		return nil, err
	}
	ibjs := baselines.NewIBJS(sc, tabs, 1000, 9)
	rs, err := baselines.NewRandomSampling(sc, tabs, 0.1, 10)
	if err != nil {
		return nil, err
	}
	systems := []struct {
		name string
		est  func(query.Query) (float64, error)
	}{
		{"DeepDB (ours)", func(q query.Query) (float64, error) {
			e, err := eng.EstimateCardinality(q)
			return e.Value, err
		}},
		{"MCSN", mcsn.EstimateCardinality},
		{"Postgres", pg.EstimateCardinality},
		{"IBJS", ibjs.EstimateCardinality},
		{"Random Sampling", rs.EstimateCardinality},
	}
	rep.addRow("%-16s %8s %8s %8s %10s   (paper: median/95th — DeepDB 1.27/3.16, MCSN 3.22/143, Postgres 6.84/817, IBJS 1.67/333, RS 5.05/10371)",
		"system", "median", "90th", "95th", "max")
	for _, sys := range systems {
		qes, err := qErrors(oracle, sys.est, queries)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sys.name, err)
		}
		med, p90, p95, mx := medianOf(qes), percentile(qes, 0.9), percentile(qes, 0.95), maxOf(qes)
		rep.addRow("%-16s %8.2f %8.2f %8.2f %10.2f", sys.name, med, p90, p95, mx)
		key := strings2key(sys.name)
		rep.metric(key+"_median", med)
		rep.metric(key+"_p95", p95)
	}
	return rep, nil
}

func strings2key(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+32)
		}
	}
	return string(out)
}

// RunFigure1 regenerates Figure 1: median q-error per join size (4-6
// tables) for MCSN (trained on <=3 joins) vs DeepDB.
func (s *Suite) RunFigure1() (*Report, error) {
	_, tabs, oracle, eng, err := s.f.imdb()
	if err != nil {
		return nil, err
	}
	mcsn, err := s.trainMCSN()
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig1", Title: "Cardinality Estimation Errors per Join Size (paper: DeepDB an order of magnitude below MCSN)"}
	rep.addRow("%-8s %12s %12s", "tables", "MCSN", "DeepDB")
	for nt := 4; nt <= 6; nt++ {
		queries := workload.SyntheticIMDb(tabs, s.f.scale.SynthQueries, nt, nt, int64(100+nt))
		mq, err := qErrors(oracle, mcsn.EstimateCardinality, queries)
		if err != nil {
			return nil, err
		}
		dq, err := qErrors(oracle, func(q query.Query) (float64, error) {
			e, err := eng.EstimateCardinality(q)
			return e.Value, err
		}, queries)
		if err != nil {
			return nil, err
		}
		rep.addRow("%-8d %12.2f %12.2f", nt, medianOf(mq), medianOf(dq))
		rep.metric(fmt.Sprintf("mcsn_%d", nt), medianOf(mq))
		rep.metric(fmt.Sprintf("deepdb_%d", nt), medianOf(dq))
	}
	return rep, nil
}

// RunFigure7 regenerates Figure 7: the median q-error grid over join sizes
// 4-6 and predicate counts 1-5.
func (s *Suite) RunFigure7() (*Report, error) {
	_, tabs, oracle, eng, err := s.f.imdb()
	if err != nil {
		return nil, err
	}
	mcsn, err := s.trainMCSN()
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig7", Title: "Median q-errors per Join Size (4-6) and #Filter Predicates (1-5)"}
	rep.addRow("%-8s %12s %12s", "cell", "MCSN", "DeepDB")
	grid := workload.SyntheticIMDbGrid(tabs, s.f.scale.GridPerCell, 55)
	for nt := 4; nt <= 6; nt++ {
		for np := 1; np <= 5; np++ {
			key := fmt.Sprintf("%d-%d", nt, np)
			queries := grid[key]
			mq, err := qErrors(oracle, mcsn.EstimateCardinality, queries)
			if err != nil {
				return nil, err
			}
			dq, err := qErrors(oracle, func(q query.Query) (float64, error) {
				e, err := eng.EstimateCardinality(q)
				return e.Value, err
			}, queries)
			if err != nil {
				return nil, err
			}
			rep.addRow("%-8s %12.2f %12.2f", key, medianOf(mq), medianOf(dq))
			rep.metric("mcsn_"+key, medianOf(mq))
			rep.metric("deepdb_"+key, medianOf(dq))
		}
	}
	return rep, nil
}

// RunTable2 regenerates Table 2: q-errors after updating the ensemble with
// held-out fractions of the data, for a random and a temporal (production
// year) split. Budget factor 0, like the paper.
func (s *Suite) RunTable2() (*Report, error) {
	rep := &Report{ID: "table2", Title: "Estimation Errors for JOB-light after Updates (paper: medians stay within 1.22-1.41)"}
	rep.addRow("%-10s %-8s %8s %8s %8s", "split", "held", "median", "90th", "95th")
	for _, split := range []string{"random", "temporal"} {
		for _, frac := range []float64{0, 0.05, 0.10, 0.20, 0.40} {
			med, p90, p95, err := s.updatesRun(split, frac)
			if err != nil {
				return nil, fmt.Errorf("split %s %.0f%%: %w", split, frac*100, err)
			}
			rep.addRow("%-10s %-8.0f%% %7.2f %8.2f %8.2f", split, frac*100, med, p90, p95)
			rep.metric(fmt.Sprintf("%s_%.0f_median", split, frac*100), med)
		}
	}
	return rep, nil
}

// updatesRun learns on (1-frac) of the IMDb data, inserts the held-out
// tuples through ensemble.Insert, and evaluates JOB-light.
func (s *Suite) updatesRun(split string, frac float64) (med, p90, p95 float64, err error) {
	scale := s.f.scale
	sc, full := datagen.IMDb(datagen.IMDbConfig{Titles: scale.IMDbTitles / 2, Seed: 21})
	oracle := exact.New(sc, full)
	rng := rand.New(rand.NewSource(31))

	// Decide which title ids are held out.
	titleTab := full["title"]
	heldTitle := make(map[float64]bool)
	switch split {
	case "random":
		for i := 0; i < titleTab.NumRows(); i++ {
			if rng.Float64() < frac {
				heldTitle[titleTab.Column("t_id").Data[i]] = true
			}
		}
	case "temporal":
		// Hold out the newest fraction by production year.
		years := titleTab.Column("t_production_year")
		var ys []float64
		for i := 0; i < titleTab.NumRows(); i++ {
			if !years.IsNull(i) {
				ys = append(ys, years.Data[i])
			}
		}
		cut := percentile(ys, 1-frac)
		for i := 0; i < titleTab.NumRows(); i++ {
			if !years.IsNull(i) && years.Data[i] >= cut && frac > 0 {
				heldTitle[titleTab.Column("t_id").Data[i]] = true
			}
		}
	}
	// Build initial tables without held-out titles and their children.
	initial := map[string]*table.Table{}
	heldRows := map[string][]int{}
	for name, t := range full {
		fkCol := ""
		if name != "title" {
			fkCol = sc.Table(name).ForeignKeys[0].Column
		}
		var keep []int
		for i := 0; i < t.NumRows(); i++ {
			var id float64
			if name == "title" {
				id = t.Column("t_id").Data[i]
			} else {
				id = t.Column(fkCol).Data[i]
			}
			if heldTitle[id] {
				heldRows[name] = append(heldRows[name], i)
			} else {
				keep = append(keep, i)
			}
		}
		initial[name] = t.Select(keep)
	}
	cfg := ensembleConfig(scale.MaxSamples, 0) // budget factor 0, like the paper
	ens, err := ensemble.Build(context.Background(), sc, initial, cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	// Insert held-out rows: titles first (One side), then children.
	order := []string{"title", "movie_companies", "cast_info", "movie_info", "movie_info_idx", "movie_keyword"}
	for _, name := range order {
		t := full[name]
		for _, r := range heldRows[name] {
			vals := map[string]table.Value{}
			for _, c := range t.Cols {
				vals[c.Meta.Name] = c.Get(r)
			}
			if err := ens.Insert(name, vals); err != nil {
				return 0, 0, 0, fmt.Errorf("inserting into %s: %w", name, err)
			}
		}
	}
	eng := core.New(ens)
	queries := workload.JOBLight(full, 5)
	qes, err := qErrors(oracle, func(q query.Query) (float64, error) {
		e, err := eng.EstimateCardinality(q)
		return e.Value, err
	}, queries)
	if err != nil {
		return 0, 0, 0, err
	}
	return medianOf(qes), percentile(qes, 0.9), percentile(qes, 0.95), nil
}

// RunFigure8 regenerates Figure 8: q-error and training time versus the
// ensemble budget factor, and versus the per-RSPN sample size.
func (s *Suite) RunFigure8() (*Report, error) {
	scale := s.f.scale
	sc, tabs := datagen.IMDb(datagen.IMDbConfig{Titles: scale.IMDbTitles / 2, Seed: 41})
	oracle := exact.New(sc, tabs)
	queries := workload.SyntheticIMDb(tabs, scale.SynthQueries, 3, 6, 61)
	rep := &Report{ID: "fig8", Title: "Q-errors and Training Time vs Budget Factor and Sample Size (paper: saturates at B=0.5; larger samples help)"}

	rep.addRow("%-18s %10s %14s", "budget factor", "median q", "train time")
	for _, b := range []float64{0, 0.5, 1, 2, 3} {
		ens, err := ensemble.Build(context.Background(), sc, tabs, ensembleConfig(scale.MaxSamples, b))
		if err != nil {
			return nil, err
		}
		eng := core.New(ens)
		qes, err := qErrors(oracle, func(q query.Query) (float64, error) {
			e, err := eng.EstimateCardinality(q)
			return e.Value, err
		}, queries)
		if err != nil {
			return nil, err
		}
		rep.addRow("%-18.1f %10.2f %13.0fms", b, medianOf(qes), ms(ens.BuildTime))
		rep.metric(fmt.Sprintf("budget_%.1f_q", b), medianOf(qes))
		rep.metric(fmt.Sprintf("budget_%.1f_ms", b), ms(ens.BuildTime))
	}

	rep.addRow("%-18s %10s %14s", "samples per RSPN", "median q", "train time")
	for _, n := range []int{1000, 5000, 20000, 60000} {
		ens, err := ensemble.Build(context.Background(), sc, tabs, ensembleConfig(n, 0.5))
		if err != nil {
			return nil, err
		}
		eng := core.New(ens)
		qes, err := qErrors(oracle, func(q query.Query) (float64, error) {
			e, err := eng.EstimateCardinality(q)
			return e.Value, err
		}, queries)
		if err != nil {
			return nil, err
		}
		rep.addRow("%-18d %10.2f %13.0fms", n, medianOf(qes), ms(ens.BuildTime))
		rep.metric(fmt.Sprintf("samples_%d_q", n), medianOf(qes))
		rep.metric(fmt.Sprintf("samples_%d_ms", n), ms(ens.BuildTime))
	}
	return rep, nil
}

// RunTrainingTime regenerates the Section 6.1 training-time comparison,
// including the cheap single-table-only ensemble and its JOB-light errors.
func (s *Suite) RunTrainingTime() (*Report, error) {
	sc, tabs, oracle, _, err := s.f.imdb()
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "traintime", Title: "Training Times and the cheap Single-Table Strategy (paper: DeepDB 48min vs MCSN 34h data prep; single-table median 1.98)"}
	// Base ensemble time is in the shared fixture.
	if s.f.imdbEns != nil {
		rep.addRow("DeepDB base+optimized ensemble: %.0fms", ms(s.f.imdbEns.BuildTime))
		rep.metric("deepdb_ms", ms(s.f.imdbEns.BuildTime))
	}
	mcsn, err := s.trainMCSN()
	if err != nil {
		return nil, err
	}
	rep.addRow("MCSN training-data execution: %.0fms + network fit: %.0fms",
		ms(mcsn.TrainingDataTime), ms(mcsn.TrainTime))
	rep.metric("mcsn_data_ms", ms(mcsn.TrainingDataTime))

	// Single-table-only ensemble.
	cfg := ensembleConfig(s.f.scale.MaxSamples, 0)
	cfg.SingleTableOnly = true
	start := time.Now()
	singles, err := ensemble.Build(context.Background(), sc, tabs, cfg)
	if err != nil {
		return nil, err
	}
	singleTime := time.Since(start)
	eng := core.New(singles)
	queries := workload.JOBLight(tabs, 5)
	qes, err := qErrors(oracle, func(q query.Query) (float64, error) {
		e, err := eng.EstimateCardinality(q)
		return e.Value, err
	}, queries)
	if err != nil {
		return nil, err
	}
	rep.addRow("single-table-only ensemble: %.0fms, JOB-light median %.2f, 90th %.2f, 95th %.2f, max %.2f",
		ms(singleTime), medianOf(qes), percentile(qes, 0.9), percentile(qes, 0.95), maxOf(qes))
	rep.metric("single_median", medianOf(qes))
	return rep, nil
}
