package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/ml"
)

// flightsTargets are the six regression targets of Figure 13.
var flightsTargets = []string{
	"f_arr_delay", "f_dep_delay", "f_taxi_out", "f_taxi_in", "f_air_time", "f_distance",
}

// flightsFeatureCols returns the feature set for one target: every other
// numeric/categorical column except the id.
func flightsFeatureCols(target string) []string {
	all := []string{"f_month", "f_day_of_week", "f_carrier", "f_origin", "f_dest",
		"f_distance", "f_dep_delay", "f_taxi_out", "f_taxi_in", "f_air_time", "f_arr_delay"}
	var out []string
	for _, c := range all {
		if c != target {
			out = append(out, c)
		}
	}
	return out
}

// RunFigure13 regenerates Figure 13: RMSE and training time on the Flights
// regression tasks for a regression tree, a neural network and DeepDB
// (paper: DeepDB comparable RMSE at zero additional training time).
func (s *Suite) RunFigure13() (*Report, error) {
	_, tabs, _, _, err := s.f.flights()
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig13", Title: "Regression on Flights: RMSE and Training Time (paper: DeepDB competitive, 0s training)"}
	rep.addRow("%-14s %-10s %10s %12s", "target", "model", "RMSE", "train")

	flights := tabs["flights"]
	n := flights.NumRows()
	trainN := n * 8 / 10
	// The RSPN already covers the whole table; baselines train on the same
	// first 80% and all evaluate on the last 20%.
	rspnMember := s.f.flightsEns.RSPNFor("flights")
	if rspnMember == nil {
		return nil, fmt.Errorf("bench: no RSPN for flights")
	}
	for _, target := range flightsTargets {
		features := flightsFeatureCols(target)
		xsAll, err := flights.Matrix(features, nil)
		if err != nil {
			return nil, err
		}
		ysCol := flights.Column(target)
		trainX, trainY := xsAll[:trainN], colSlice(ysCol.Data[:trainN])
		testX, testY := xsAll[trainN:], colSlice(ysCol.Data[trainN:])

		// Regression tree.
		start := time.Now()
		tree, err := ml.FitTree(trainX, trainY, ml.DefaultTreeConfig())
		if err != nil {
			return nil, err
		}
		treeTime := time.Since(start)
		treePred := make([]float64, len(testX))
		for i, x := range testX {
			treePred[i] = tree.Predict(x)
		}

		// Neural network.
		mlpCfg := ml.DefaultMLPConfig()
		mlpCfg.Epochs = 10
		start = time.Now()
		net, err := ml.FitMLP(trainX, trainY, mlpCfg)
		if err != nil {
			return nil, err
		}
		mlpTime := time.Since(start)
		mlpPred := make([]float64, len(testX))
		for i, x := range testX {
			mlpPred[i] = net.Predict(x)
		}

		// DeepDB: the ensemble's RSPN answers conditional expectations with
		// no additional training. Restrict evidence to the strongest
		// features to keep per-prediction latency low.
		evidence := regressionEvidence(target)
		reg, err := ml.NewRSPNRegressor(rspnMember, target, evidence)
		if err != nil {
			return nil, err
		}
		evIdx := make([]int, len(evidence))
		for i, c := range evidence {
			for j, f := range features {
				if f == c {
					evIdx[i] = j
				}
			}
		}
		deepPred := make([]float64, len(testX))
		for i, x := range testX {
			ev := make([]float64, len(evIdx))
			for k, j := range evIdx {
				ev[k] = x[j]
			}
			p, err := reg.Predict(ev)
			if err != nil {
				return nil, err
			}
			deepPred[i] = p
		}
		rep.addRow("%-14s %-10s %10.2f %12v", target, "tree", ml.RMSE(treePred, testY), treeTime.Round(time.Millisecond))
		rep.addRow("%-14s %-10s %10.2f %12v", target, "mlp", ml.RMSE(mlpPred, testY), mlpTime.Round(time.Millisecond))
		rep.addRow("%-14s %-10s %10.2f %12s", target, "DeepDB", ml.RMSE(deepPred, testY), "0s")
		rep.metric(target+"_tree", ml.RMSE(treePred, testY))
		rep.metric(target+"_mlp", ml.RMSE(mlpPred, testY))
		rep.metric(target+"_deepdb", ml.RMSE(deepPred, testY))
	}
	return rep, nil
}

// regressionEvidence picks the strongest conditioning features per target
// (the correlated columns the generator plants).
func regressionEvidence(target string) []string {
	switch target {
	case "f_arr_delay":
		return []string{"f_dep_delay", "f_taxi_out"}
	case "f_dep_delay":
		return []string{"f_carrier", "f_origin", "f_month"}
	case "f_taxi_out":
		return []string{"f_origin"}
	case "f_taxi_in":
		return []string{"f_dest"}
	case "f_air_time":
		return []string{"f_distance"}
	case "f_distance":
		return []string{"f_air_time"}
	default:
		return nil
	}
}

func colSlice(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	for i, v := range out {
		if math.IsNaN(v) {
			out[i] = 0
		}
	}
	return out
}
