package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/query"
)

// TestPlanReuseBitIdentical: executing one compiled plan with different
// bound values must produce estimates bit-identical to compiling each
// literal query from scratch — the contract that makes the plan cache and
// prepared statements transparent.
func TestPlanReuseBitIdentical(t *testing.T) {
	e, _, tabs := exactEnsemble(t, false)
	ctx := context.Background()
	template := query.Query{
		Aggregate: query.Count,
		Tables:    []string{"customer", "orders"},
		Filters: []query.Predicate{
			{Column: "c_age", Op: query.Lt, Param: 1},
			{Column: "o_channel", Op: query.Eq, Value: onlineCode(tabs)},
		},
	}
	p, err := e.Compile(template)
	if err != nil {
		t.Fatal(err)
	}
	for _, age := range []float64{25, 55, 85} {
		prepared, err := p.EstimateCardinality(ctx, age)
		if err != nil {
			t.Fatal(err)
		}
		lit := template
		lit.Filters = append([]query.Predicate(nil), template.Filters...)
		lit.Filters[0] = query.Predicate{Column: "c_age", Op: query.Lt, Value: age}
		oneShot, err := e.EstimateCardinality(lit)
		if err != nil {
			t.Fatal(err)
		}
		if prepared != oneShot {
			t.Fatalf("age %v: prepared %+v != one-shot %+v", age, prepared, oneShot)
		}
	}
}

// TestPlanExecuteGroupedAndAggregate: a plan compiled for a grouped AVG
// executes identically to the one-shot path across parameter values.
func TestPlanExecuteGroupedAndAggregate(t *testing.T) {
	e, _, _ := exactEnsemble(t, true)
	ctx := context.Background()
	template := query.Query{
		Aggregate: query.Avg, AggColumn: "c_age",
		Tables:  []string{"customer", "orders"},
		Filters: []query.Predicate{{Column: "c_age", Op: query.Le, Param: 1}},
		GroupBy: []string{"o_channel"},
	}
	p, err := e.Compile(template)
	if err != nil {
		t.Fatal(err)
	}
	for _, hi := range []float64{30, 90} {
		prepared, err := p.Execute(ctx, hi)
		if err != nil {
			t.Fatal(err)
		}
		lit, err := template.Bind(hi)
		if err != nil {
			t.Fatal(err)
		}
		oneShot, err := e.Execute(lit)
		if err != nil {
			t.Fatal(err)
		}
		if len(prepared.Groups) != len(oneShot.Groups) {
			t.Fatalf("hi %v: group counts differ: %d vs %d", hi, len(prepared.Groups), len(oneShot.Groups))
		}
		for i := range prepared.Groups {
			if prepared.Groups[i].Estimate != oneShot.Groups[i].Estimate {
				t.Fatalf("hi %v group %d: %+v != %+v", hi, i, prepared.Groups[i], oneShot.Groups[i])
			}
		}
	}
}

// TestPlanBindErrors: wrong arity, unbound templates and shape mismatches
// fail with clear errors instead of wrong results.
func TestPlanBindErrors(t *testing.T) {
	e, _, _ := exactEnsemble(t, false)
	ctx := context.Background()
	template := query.Query{
		Aggregate: query.Count, Tables: []string{"customer"},
		Filters: []query.Predicate{{Column: "c_age", Op: query.Lt, Param: 1}},
	}
	p, err := e.Compile(template)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.EstimateCardinality(ctx); err == nil {
		t.Fatal("missing parameter must fail")
	}
	if _, err := p.EstimateCardinality(ctx, 1, 2); err == nil {
		t.Fatal("extra parameter must fail")
	}
	if _, err := p.EstimateCardinalityQuery(ctx, template); err == nil ||
		!strings.Contains(err.Error(), "unbound") {
		t.Fatalf("executing an unbound template: err = %v, want unbound-parameter error", err)
	}
	other := query.Query{Aggregate: query.Count, Tables: []string{"orders"}}
	if _, err := p.EstimateCardinalityQuery(ctx, other); err == nil ||
		!strings.Contains(err.Error(), "shape") {
		t.Fatalf("shape mismatch: err = %v, want shape error", err)
	}
}

// TestPlanExecOptsConfidence: a per-execution confidence level changes the
// interval width but never the estimate.
func TestPlanExecOptsConfidence(t *testing.T) {
	e, _, tabs := exactEnsemble(t, true)
	ctx := context.Background()
	q := query.Query{
		Aggregate: query.Count, Tables: []string{"customer"},
		Filters: []query.Predicate{{Column: "c_region", Op: query.Eq, Value: euCode(tabs)}},
	}
	p, err := e.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	def, err := p.ExecuteOpts(ctx, ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := p.ExecuteOpts(ctx, ExecOpts{ConfidenceLevel: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	d, w := def.Groups[0], wide.Groups[0]
	if d.Estimate != w.Estimate {
		t.Fatalf("confidence level changed the estimate: %+v vs %+v", d.Estimate, w.Estimate)
	}
	if d.Estimate.Variance > 0 && (w.CIHigh-w.CILow) <= (d.CIHigh-d.CILow) {
		t.Fatalf("0.999 interval [%v,%v] not wider than default [%v,%v]", w.CILow, w.CIHigh, d.CILow, d.CIHigh)
	}
}

// TestPlanExplainMatchesExecution: Explain renders from the same compiled
// structure the execution walks, including the Theorem-2 decomposition and
// parameter markers.
func TestPlanExplainMatchesExecution(t *testing.T) {
	e, _, _ := exactEnsemble(t, false) // single-table members force Theorem 2 on joins
	template := query.Query{
		Aggregate: query.Count,
		Tables:    []string{"customer", "orders"},
		Filters:   []query.Predicate{{Column: "c_age", Op: query.Lt, Param: 1}},
	}
	p, err := e.Compile(template)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Explain()
	for _, want := range []string{"Theorem 2", "placeholder", "branch"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	// The ctx-aware engine entry point honours cancellation.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Explain(cancelled, template); err == nil {
		t.Fatal("cancelled Explain must fail")
	}
	if _, err := e.Explain(context.Background(), template); err != nil {
		t.Fatal(err)
	}
}
