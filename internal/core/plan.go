package core

// plan.go implements the engine's compile/execute split. Compile resolves
// everything about a query that does not depend on literal values — SQL
// validation, effective outer tables, the compilation case of Section 4
// (exact RSPN, superset RSPN, median set, or the Theorem-2 branch
// decomposition with per-branch RSPN picks), moment-function maps, filter
// routing across branches, inclusion-exclusion masks, group-key
// enumeration and aggregate member selection — into a Plan. Execution is
// then a pure walk over the prebuilt structure with concrete predicate
// values bound in, so one Plan can serve any number of executions of the
// same query *shape* (a prepared statement with `?` parameters, or a plan
// cache keyed on query.ShapeKey).

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/rspn"
	"repro/internal/spn"
)

// ExecOpts are per-execution options, applied at execution time rather
// than engine construction so one plan can serve callers with different
// needs.
type ExecOpts struct {
	// ConfidenceLevel overrides the engine's interval level for this
	// execution; 0 keeps the engine default.
	ConfidenceLevel float64
}

// Plan is a query compiled against the engine's ensemble. A Plan is
// immutable after Compile and safe for concurrent executions; it stays
// valid until the ensemble changes (an Insert/Delete can add group-by keys
// and shift statistics-based choices — recompile after updates, as the
// deepdb facade's generation-tagged plan cache does).
type Plan struct {
	eng     *Engine
	q       query.Query // validated template (may contain placeholders)
	shape   string
	nparams int

	// card estimates COUNT(*) over the join with the query's filters,
	// ignoring GROUP BY and the aggregate — the EstimateCardinality view
	// (and the executed estimator for ungrouped COUNT queries).
	card []signedCount

	// Grouped execution: per-group estimators are compiled from the group
	// template (the query with its group columns as extra equality
	// filters, values bound per key at execution).
	groupCols []string
	groupKeys [][]float64
	count     []signedCount // per-group COUNT / existence gate / AVG divisor

	// Aggregate estimators (nil unless the aggregate needs them).
	sum []signedSum // SUM terms; also the numerator of disjunctive AVG
	avg *avgNode    // plain (non-disjunctive) AVG ratio

	// The Execute-side estimators (group template, aggregate members,
	// group-key enumeration) compile lazily on first use, guarded by
	// execOnce: EstimateCardinality ignores aggregate and GROUP BY
	// settings by contract and must neither pay for them nor fail on
	// them. execErr holds the (sticky) compilation outcome.
	execOnce sync.Once
	execErr  error
}

// signedCount is one inclusion-exclusion term of a COUNT: the conjunctive
// sub-query selected by mask over the disjunction predicates, compiled to
// a countNode. Queries without a disjunction compile to a single term with
// mask 0 and sign +1.
type signedCount struct {
	sign float64
	mask int
	node *countNode
}

// signedSum is one inclusion-exclusion term of a SUM: either a direct
// single-expectation evaluation on a covering RSPN, or the COUNT * AVG
// fallback of Section 4.2.
type signedSum struct {
	sign   float64
	mask   int
	direct *t1call
	cnt    *countNode
	avg    *avgNode
}

// countKind is the compilation case of a countNode.
type countKind int

const (
	// ckSingle: one covering RSPN answers the node (Cases 1 and 2).
	ckSingle countKind = iota
	// ckMedian: the median over all covering RSPNs (StrategyMedian).
	ckMedian
	// ckTheorem2: a multi-RSPN combination across bridge FK edges.
	ckTheorem2
)

// countNode is a compiled COUNT estimator over one table set.
type countNode struct {
	tables []string
	outer  []string
	kind   countKind

	single t1call   // ckSingle
	median []t1call // ckMedian

	// ckTheorem2: the left sub-join evaluation plus one sub-plan per
	// uncovered branch (fully-outer branches are folded into the left
	// side's max(F,1) factor and have no sub-plan).
	left       t1call
	leftTables []string
	branches   []*branchPlan
}

// branchPlan is one Theorem-2 branch: its compiled sub-estimator, the
// filter columns routed to it, and the bridge metadata for the ratio
// denominator (looked up at execution so maintained statistics stay
// authoritative).
type branchPlan struct {
	br   branch
	keep map[string]bool
	node *countNode
}

// t1call captures one Theorem-1 evaluation: the RSPN, its precomputed
// moment functions (inverse tuple factors plus any Theorem-2 bridge
// factors), inner-join indicator tables, and the filter columns to keep
// (nil passes every predicate through).
type t1call struct {
	r     *rspn.RSPN
	fns   map[string]spn.Fn
	inner []string
	keep  map[string]bool
}

// avgNode is a compiled AVG: the chosen RSPN, the resolvable filter
// columns, and the numerator/denominator moment functions of the
// normalized conditional expectation of Section 4.2.
type avgNode struct {
	r      *rspn.RSPN
	keep   map[string]bool
	numFns map[string]spn.Fn
	denFns map[string]spn.Fn
	inner  []string
	aggCol string
}

// Compile validates the query and builds its execution plan. Literal
// values (and `?` parameter markers) play no role in compilation, so the
// plan serves every query sharing the template's shape.
func (e *Engine) Compile(q query.Query) (*Plan, error) {
	if err := e.validateQuery(q); err != nil {
		return nil, err
	}
	p := &Plan{eng: e, q: q, shape: q.ShapeKey(), nparams: q.NumParams()}
	var err error
	p.card, err = e.compileCountTerms(q)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// ensureExec compiles the Execute-side estimators on first use (safe
// under concurrent executions); the outcome is sticky for the plan's
// lifetime.
func (p *Plan) ensureExec() error {
	p.execOnce.Do(func() { p.execErr = p.compileExec(p.q) })
	return p.execErr
}

// ExecErr forces the Execute-side compilation and reports its error, so
// callers like Prepare can surface execution-compilation failures eagerly
// without running the query.
func (p *Plan) ExecErr() error { return p.ensureExec() }

// compileExec builds the Execute-side estimators (group template and
// aggregate members). Its error fails Execute but not EstimateCardinality,
// preserving the contract that cardinality estimation ignores aggregate
// and GROUP BY settings.
func (p *Plan) compileExec(q query.Query) error {
	e := p.eng
	gt := q
	if len(q.GroupBy) > 0 {
		var err error
		p.groupCols = q.GroupBy
		p.groupKeys, err = e.groupKeys(q)
		if err != nil {
			return err
		}
		gt.GroupBy = nil
		gfs := make([]query.Predicate, len(q.GroupBy))
		for i, c := range q.GroupBy {
			gfs[i] = query.Predicate{Column: c, Op: query.Eq}
		}
		gt.Filters = append(append([]query.Predicate(nil), q.Filters...), gfs...)
		p.count, err = e.compileCountTerms(gt)
		if err != nil {
			return err
		}
	}
	var err error
	switch q.Aggregate {
	case query.Count:
		// The count terms above (or card, when ungrouped) are the answer.
	case query.Sum:
		p.sum, err = e.compileSumTerms(gt)
	case query.Avg:
		if len(q.Disjunction) > 0 {
			// AVG over a disjunction is SUM / COUNT over the same masks.
			st := gt
			st.Aggregate = query.Sum
			p.sum, err = e.compileSumTerms(st)
		} else {
			p.avg, err = e.compileAvg(gt)
		}
	default:
		err = fmt.Errorf("core: unsupported aggregate %v", q.Aggregate)
	}
	return err
}

// compileCountTerms expands the query's disjunction (if any) with the
// inclusion-exclusion principle and compiles each signed conjunctive term.
// Outer-table semantics are resolved per term: a disjunct on an outer
// table's column reverts that table to inner-join behaviour within its
// terms only.
func (e *Engine) compileCountTerms(q query.Query) ([]signedCount, error) {
	subs, err := expandInclusionExclusion(q)
	if err != nil {
		return nil, err
	}
	out := make([]signedCount, len(subs))
	for i, sq := range subs {
		node, err := e.compileCount(sq.q.Tables, sq.q.Filters, e.effectiveOuter(sq.q))
		if err != nil {
			return nil, err
		}
		out[i] = signedCount{sign: sq.sign, mask: sq.mask, node: node}
	}
	return out, nil
}

// compileCount dispatches between the single-RSPN cases and Theorem 2 —
// the compile-time mirror of the former per-call estimateCount. preds are
// the template predicates visible at this node; only their columns matter.
func (e *Engine) compileCount(tables []string, preds []query.Predicate, outer []string) (*countNode, error) {
	covering := e.Ens.Covering(tables)
	if len(covering) > 0 {
		if e.Strategy == StrategyMedian && len(covering) > 1 {
			calls := make([]t1call, len(covering))
			for i, r := range covering {
				calls[i] = e.compileT1(r, tables, outer, nil, nil)
			}
			return &countNode{tables: tables, outer: outer, kind: ckMedian, median: calls}, nil
		}
		r := e.pickCovering(covering, preds)
		return &countNode{tables: tables, outer: outer, kind: ckSingle,
			single: e.compileT1(r, tables, outer, nil, nil)}, nil
	}
	return e.compileTheorem2(tables, preds, outer)
}

// compileTheorem2 compiles the multi-RSPN combination of Case 3: the
// best-scoring RSPN answers the largest connected sub-query it covers,
// extended across each bridge FK edge; every remaining branch becomes a
// compiled sub-plan whose ratio divides by its bridgehead's cardinality.
func (e *Engine) compileTheorem2(tables []string, preds []query.Predicate, outer []string) (*countNode, error) {
	r := e.pickPartial(tables, preds)
	if r == nil {
		return nil, fmt.Errorf("core: no RSPN covers any of tables %v", tables)
	}
	sl := e.connectedCovered(tables, r)
	if len(sl) == 0 {
		return nil, fmt.Errorf("core: internal: empty coverage for %v", tables)
	}
	rest := subtract(tables, sl)
	branches, err := e.branchComponents(rest, sl)
	if err != nil {
		return nil, err
	}
	// Bridge factors multiply into the left expectation when the branch
	// head is on the Many side of its bridge edge. A fully-outer branch
	// (all its tables outer-joined, hence unfiltered after WHERE
	// normalization) multiplies by max(F, 1): rows without partners still
	// appear once.
	outerSet := toSet(outer)
	extraFns := map[string]spn.Fn{}
	for _, br := range branches {
		if !br.headIsMany {
			continue
		}
		col := tableTupleFactor(br)
		if !r.HasColumn(col) {
			return nil, fmt.Errorf("core: RSPN %v lacks bridge factor column %s", r.Tables, col)
		}
		if branchAllOuter(br, outerSet) {
			extraFns[col] = spn.FnMax1
		} else {
			extraFns[col] = spn.FnIdent
		}
	}
	node := &countNode{tables: tables, outer: outer, kind: ckTheorem2, leftTables: sl,
		left: e.compileT1(r, sl, intersect(outer, sl), extraFns, e.keepColumns(sl, preds))}
	// Non-outer branches contribute selectivity ratios; unfiltered outer
	// branches are fully handled by the max(F,1) factor above.
	for _, br := range branches {
		if branchAllOuter(br, outerSet) {
			continue
		}
		keep := e.keepColumns(br.tables, preds)
		sub, err := e.compileCount(br.tables, selectPreds(preds, keep), intersect(outer, br.tables))
		if err != nil {
			return nil, err
		}
		node.branches = append(node.branches, &branchPlan{br: br, keep: keep, node: sub})
	}
	return node, nil
}

// compileT1 precomputes one Theorem-1 evaluation on an RSPN.
func (e *Engine) compileT1(r *rspn.RSPN, tables, outer []string, extraFns map[string]spn.Fn, keep map[string]bool) t1call {
	fns := map[string]spn.Fn{}
	for _, c := range r.InverseFactorColumns(tables) {
		fns[c] = spn.FnInv
	}
	for c, fn := range extraFns {
		fns[c] = fn
	}
	// Outer tables keep padded rows: their indicator constraint is
	// dropped, so a row missing the outer side still counts once.
	inner := intersect(subtract(tables, outer), r.Tables)
	return t1call{r: r, fns: fns, inner: inner, keep: keep}
}

// compileSumTerms compiles the signed SUM terms of the (possibly
// disjunctive) query.
func (e *Engine) compileSumTerms(q query.Query) ([]signedSum, error) {
	subs, err := expandInclusionExclusion(q)
	if err != nil {
		return nil, err
	}
	out := make([]signedSum, len(subs))
	for i, sq := range subs {
		st, err := e.compileSum(sq.q)
		if err != nil {
			return nil, err
		}
		st.sign, st.mask = sq.sign, sq.mask
		out[i] = st
	}
	return out, nil
}

// compileSum compiles one conjunctive SUM. With a covering RSPN that owns
// the aggregate column and resolves every filter, the sum is a single
// expectation |J| * E(A/F' * 1_C * N); otherwise it is COUNT * AVG as in
// Section 4.2.
func (e *Engine) compileSum(q query.Query) (signedSum, error) {
	if covering := e.Ens.Covering(q.Tables); len(covering) > 0 {
		for _, r := range covering {
			if !r.HasColumn(q.AggColumn) {
				continue
			}
			resolved := 0
			for _, f := range q.Filters {
				if r.ResolvesColumn(f.Column) {
					resolved++
				}
			}
			if resolved != len(q.Filters) {
				continue // cannot resolve all filters; try another member
			}
			call := e.compileT1(r, q.Tables, e.effectiveOuter(q), nil, nil)
			call.fns[q.AggColumn] = spn.FnIdent
			return signedSum{direct: &call}, nil
		}
	}
	// COUNT * AVG fallback. The count must range over rows with a non-NULL
	// aggregate column to match SQL SUM semantics; the AVG denominator
	// already does, so the product is consistent up to NULL skew.
	cnt, err := e.compileCount(q.Tables, q.Filters, e.effectiveOuter(q))
	if err != nil {
		return signedSum{}, err
	}
	av, err := e.compileAvg(q)
	if err != nil {
		return signedSum{}, err
	}
	return signedSum{cnt: cnt, avg: av}, nil
}

// compileAvg compiles an AVG as the ratio of expectations of Section 4.2,
// restricted to the filters the chosen RSPN can resolve (the paper drops
// the rest, accepting an approximation).
func (e *Engine) compileAvg(q query.Query) (*avgNode, error) {
	r, err := e.pickForAggregate(q)
	if err != nil {
		return nil, err
	}
	keep := map[string]bool{}
	for _, f := range q.Filters {
		if r.ResolvesColumn(f.Column) {
			keep[f.Column] = true
		}
	}
	inner := intersect(subtract(q.Tables, e.effectiveOuter(q)), r.Tables)
	numFns := map[string]spn.Fn{q.AggColumn: spn.FnIdent}
	denFns := map[string]spn.Fn{}
	for _, c := range r.InverseFactorColumns(q.Tables) {
		numFns[c] = spn.FnInv
		denFns[c] = spn.FnInv
	}
	return &avgNode{r: r, keep: keep, numFns: numFns, denFns: denFns, inner: inner, aggCol: q.AggColumn}, nil
}

// keepColumns returns the filter columns owned by one of the tables —
// the compile-time image of the former per-call filtersFor.
func (e *Engine) keepColumns(tables []string, preds []query.Predicate) map[string]bool {
	out := map[string]bool{}
	for _, f := range preds {
		if e.columnOwner(f.Column, tables) != "" {
			out[f.Column] = true
		}
	}
	return out
}

// selectPreds keeps the predicates whose column is in keep (nil keeps all).
func selectPreds(preds []query.Predicate, keep map[string]bool) []query.Predicate {
	if keep == nil {
		return preds
	}
	var out []query.Predicate
	for _, f := range preds {
		if keep[f.Column] {
			out = append(out, f)
		}
	}
	return out
}

// ---- plan accessors ----

// Shape returns the plan's normalized shape key (query.ShapeKey of its
// template).
func (p *Plan) Shape() string { return p.shape }

// NumParams returns the number of parameter placeholders in the template.
func (p *Plan) NumParams() int { return p.nparams }

// Query returns the compiled template.
func (p *Plan) Query() query.Query { return p.q }

// ---- execution ----

// Execute runs the plan with the given parameter values bound into its
// placeholders (none for a literal query).
func (p *Plan) Execute(ctx context.Context, params ...float64) (AQPResult, error) {
	return p.ExecuteOpts(ctx, ExecOpts{}, params...)
}

// ExecuteOpts is Execute with per-call options.
func (p *Plan) ExecuteOpts(ctx context.Context, opts ExecOpts, params ...float64) (AQPResult, error) {
	q, err := p.q.Bind(params...)
	if err != nil {
		return AQPResult{}, err
	}
	return p.ExecuteQuery(ctx, opts, q)
}

// ExecuteQuery runs the plan against a fully-bound concrete query that
// shares the plan's shape — the entry point for plan-cache reuse, where
// the concrete query may differ from the template in literal values only.
func (p *Plan) ExecuteQuery(ctx context.Context, opts ExecOpts, q query.Query) (AQPResult, error) {
	if err := p.checkBound(q); err != nil {
		return AQPResult{}, err
	}
	if err := p.ensureExec(); err != nil {
		return AQPResult{}, err
	}
	level := p.level(opts)
	if len(p.groupCols) == 0 {
		est, err := p.aggregate(ctx, p.card, q.Filters, q.Disjunction)
		if err != nil {
			return AQPResult{}, err
		}
		return AQPResult{Groups: []AQPGroup{finish(nil, est, level)}}, nil
	}
	groups, err := p.executeGroups(ctx, q, level)
	if err != nil {
		return AQPResult{}, err
	}
	out := AQPResult{Groups: groups}
	sort.Slice(out.Groups, func(i, j int) bool {
		a, b := out.Groups[i].Key, out.Groups[j].Key
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out, nil
}

// EstimateCardinality estimates COUNT(*) over the join with the bound
// filters, ignoring aggregate and GROUP BY settings.
func (p *Plan) EstimateCardinality(ctx context.Context, params ...float64) (Estimate, error) {
	q, err := p.q.Bind(params...)
	if err != nil {
		return Estimate{}, err
	}
	return p.EstimateCardinalityQuery(ctx, q)
}

// EstimateCardinalityQuery is EstimateCardinality for a concrete query
// sharing the plan's shape.
func (p *Plan) EstimateCardinalityQuery(ctx context.Context, q query.Query) (Estimate, error) {
	if err := p.checkBound(q); err != nil {
		return Estimate{}, err
	}
	return p.runCount(ctx, p.card, q.Filters, q.Disjunction)
}

// checkBound verifies the concrete query is parameter-free and matches the
// plan's shape.
func (p *Plan) checkBound(q query.Query) error {
	if n := q.NumParams(); n > 0 {
		return fmt.Errorf("core: query has %d unbound parameters (bind values before executing, or use the params form)", n)
	}
	if !query.SameShape(p.q, q) {
		return fmt.Errorf("core: query shape does not match the compiled plan (plan %s)", p.shape)
	}
	return nil
}

// level resolves the effective confidence level for one execution.
func (p *Plan) level(opts ExecOpts) float64 {
	level := opts.ConfidenceLevel
	if level <= 0 || level >= 1 {
		level = p.eng.ConfidenceLevel
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	return level
}

// aggregate evaluates the plan's aggregate for one bound predicate set.
// countTerms is the COUNT estimator matching the predicate set (card for
// the base query, count for the group template).
func (p *Plan) aggregate(ctx context.Context, countTerms []signedCount, preds, disj []query.Predicate) (Estimate, error) {
	if err := ctx.Err(); err != nil {
		return Estimate{}, err
	}
	switch p.q.Aggregate {
	case query.Count:
		return p.runCount(ctx, countTerms, preds, disj)
	case query.Sum:
		return p.runSum(ctx, preds, disj)
	case query.Avg:
		if p.avg != nil {
			return p.avg.estimate(p.eng, preds)
		}
		sum, err := p.runSum(ctx, preds, disj)
		if err != nil {
			return Estimate{}, err
		}
		cnt, err := p.runCount(ctx, countTerms, preds, disj)
		if err != nil {
			return Estimate{}, err
		}
		return divEstimate(sum, cnt), nil
	default:
		return Estimate{}, fmt.Errorf("core: unsupported aggregate %v", p.q.Aggregate)
	}
}

// executeGroups fans the per-group estimates over up to Parallelism
// workers, preserving key order in the result.
func (p *Plan) executeGroups(ctx context.Context, q query.Query, level float64) ([]AQPGroup, error) {
	results := make([]*AQPGroup, len(p.groupKeys))
	err := parallel.ForEach(len(p.groupKeys), p.eng.Parallelism, func(i int) error {
		g, err := p.estimateGroup(ctx, q, p.groupKeys[i], level)
		if err != nil {
			return err
		}
		results[i] = g
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []AQPGroup
	for _, g := range results {
		if g != nil {
			out = append(out, *g)
		}
	}
	return out, nil
}

// estimateGroup answers one group of a GROUP BY query: nil when the model
// believes the group is empty.
func (p *Plan) estimateGroup(ctx context.Context, q query.Query, key []float64, level float64) (*AQPGroup, error) {
	preds := make([]query.Predicate, 0, len(q.Filters)+len(key))
	preds = append(preds, q.Filters...)
	preds = append(preds, groupFilters(p.groupCols, key)...)
	cnt, err := p.runCount(ctx, p.count, preds, q.Disjunction)
	if err != nil {
		return nil, err
	}
	if cnt.Value < 0.5 {
		return nil, nil
	}
	est := cnt
	if p.q.Aggregate != query.Count {
		est, err = p.aggregate(ctx, p.count, preds, q.Disjunction)
		if err != nil {
			return nil, err
		}
	}
	g := finish(key, est, level)
	return &g, nil
}

// runCount evaluates the signed COUNT terms with the bound predicates,
// fanning the (independent) inclusion-exclusion terms over up to
// Engine.Parallelism workers and combining in deterministic order.
// Variances add — the terms are not independent, so this is the
// conservative bound. The disjunctive total is clamped at zero.
func (p *Plan) runCount(ctx context.Context, terms []signedCount, base, disj []query.Predicate) (Estimate, error) {
	if len(terms) == 1 && terms[0].mask == 0 {
		return terms[0].node.estimate(ctx, p.eng, base)
	}
	ests := make([]Estimate, len(terms))
	err := parallel.ForEach(len(terms), p.eng.Parallelism, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		est, err := terms[i].node.estimate(ctx, p.eng, maskPreds(base, disj, terms[i].mask))
		if err != nil {
			return err
		}
		ests[i] = est
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	var total Estimate
	for i, t := range terms {
		total.Value += t.sign * ests[i].Value
		total.Variance += ests[i].Variance
	}
	if total.Value < 0 {
		total.Value = 0
	}
	return total, nil
}

// runSum evaluates the signed SUM terms (no clamping: SUM distributes over
// inclusion-exclusion with its sign).
func (p *Plan) runSum(ctx context.Context, base, disj []query.Predicate) (Estimate, error) {
	terms := p.sum
	if len(terms) == 1 && terms[0].mask == 0 {
		return terms[0].estimate(ctx, p.eng, base)
	}
	ests := make([]Estimate, len(terms))
	err := parallel.ForEach(len(terms), p.eng.Parallelism, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		est, err := terms[i].estimate(ctx, p.eng, maskPreds(base, disj, terms[i].mask))
		if err != nil {
			return err
		}
		ests[i] = est
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	var total Estimate
	for i, t := range terms {
		total.Value += t.sign * ests[i].Value
		total.Variance += ests[i].Variance
	}
	return total, nil
}

// maskPreds appends the disjunction predicates selected by mask to the
// base conjuncts.
func maskPreds(base, disj []query.Predicate, mask int) []query.Predicate {
	if mask == 0 {
		return base
	}
	out := make([]query.Predicate, 0, len(base)+len(disj))
	out = append(out, base...)
	for i := 0; i < len(disj); i++ {
		if mask&(1<<i) != 0 {
			out = append(out, disj[i])
		}
	}
	return out
}

// estimate walks one compiled COUNT node with bound predicates.
func (n *countNode) estimate(ctx context.Context, e *Engine, preds []query.Predicate) (Estimate, error) {
	if err := ctx.Err(); err != nil {
		return Estimate{}, err
	}
	switch n.kind {
	case ckSingle:
		return n.single.estimate(e, preds)
	case ckMedian:
		return n.estimateMedian(ctx, e, preds)
	default:
		return n.estimateTheorem2(ctx, e, preds)
	}
}

// estimateMedian evaluates every covering RSPN and returns the median: the
// middle estimate for an odd member count, the average of the two middle
// estimates for an even one (variance of the two-point mean, treating the
// members as independent).
func (n *countNode) estimateMedian(ctx context.Context, e *Engine, preds []query.Predicate) (Estimate, error) {
	ests := make([]Estimate, 0, len(n.median))
	for _, call := range n.median {
		if err := ctx.Err(); err != nil {
			return Estimate{}, err
		}
		est, err := call.estimate(e, preds)
		if err != nil {
			return Estimate{}, err
		}
		ests = append(ests, est)
	}
	sort.Slice(ests, func(i, j int) bool { return ests[i].Value < ests[j].Value })
	m := len(ests)
	if m%2 == 1 {
		return ests[m/2], nil
	}
	lo, hi := ests[m/2-1], ests[m/2]
	return Estimate{
		Value:    (lo.Value + hi.Value) / 2,
		Variance: (lo.Variance + hi.Variance) / 4,
	}, nil
}

// estimateTheorem2 evaluates the left sub-estimate and every branch ratio
// — independent evaluations fanned over up to Engine.Parallelism workers
// (<= 1 runs sequentially) — and combines them in deterministic order.
func (n *countNode) estimateTheorem2(ctx context.Context, e *Engine, preds []query.Predicate) (Estimate, error) {
	ests := make([]Estimate, 1+len(n.branches))
	err := parallel.ForEach(len(ests), e.Parallelism, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if i == 0 {
			left, err := n.left.estimate(e, preds)
			if err != nil {
				return err
			}
			ests[0] = left
			return nil
		}
		b := n.branches[i-1]
		num, err := b.node.estimate(ctx, e, selectPreds(preds, b.keep))
		if err != nil {
			return err
		}
		den, ok := e.Ens.TableRows(b.br.head)
		if !ok {
			return fmt.Errorf("core: no cardinality statistic or base table for %s (Theorem 2 needs its size)", b.br.head)
		}
		if den <= 0 {
			// An empty bridgehead table joins to nothing: this branch's
			// ratio is an exact zero. The remaining branches still
			// evaluate, so their errors and cancellation surface the same
			// way regardless of branch order.
			ests[i] = Estimate{}
			return nil
		}
		ests[i] = scaleEstimate(num, 1/den)
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	result := ests[0]
	for _, ratio := range ests[1:] {
		result = mulEstimate(result, ratio)
	}
	return result, nil
}

// estimate evaluates |J| * E(fns * 1_C * prod N_T) on the call's RSPN with
// the variance derivation of Section 5.1.
func (t t1call) estimate(e *Engine, preds []query.Predicate) (Estimate, error) {
	term := rspn.Term{Fns: t.fns, Filters: selectPreds(preds, t.keep), InnerTables: t.inner}
	full, err := t.r.Expectation(term)
	if err != nil {
		return Estimate{}, err
	}
	variance, err := e.termVariance(t.r, term, full)
	if err != nil {
		return Estimate{}, err
	}
	return scaleEstimate(Estimate{Value: full, Variance: variance}, t.r.FullSize), nil
}

// estimate evaluates one signed SUM term.
func (s signedSum) estimate(ctx context.Context, e *Engine, preds []query.Predicate) (Estimate, error) {
	if err := ctx.Err(); err != nil {
		return Estimate{}, err
	}
	if s.direct != nil {
		return s.direct.estimate(e, preds)
	}
	cnt, err := s.cnt.estimate(ctx, e, preds)
	if err != nil {
		return Estimate{}, err
	}
	av, err := s.avg.estimate(e, preds)
	if err != nil {
		return Estimate{}, err
	}
	return mulEstimate(cnt, av), nil
}

// estimate evaluates the AVG ratio of expectations.
func (a *avgNode) estimate(e *Engine, preds []query.Predicate) (Estimate, error) {
	kept := selectPreds(preds, a.keep)
	numTerm := rspn.Term{Fns: a.numFns, Filters: kept, InnerTables: a.inner}
	denTerm := rspn.Term{Fns: a.denFns, Filters: kept, InnerTables: a.inner, NotNull: []string{a.aggCol}}
	numV, err := a.r.Expectation(numTerm)
	if err != nil {
		return Estimate{}, err
	}
	denV, err := a.r.Expectation(denTerm)
	if err != nil {
		return Estimate{}, err
	}
	if denV <= 0 {
		return Estimate{}, nil
	}
	numVar, err := e.termVariance(a.r, numTerm, numV)
	if err != nil {
		return Estimate{}, err
	}
	denVar, err := e.termVariance(a.r, denTerm, denV)
	if err != nil {
		return Estimate{}, err
	}
	return divEstimate(Estimate{Value: numV, Variance: numVar}, Estimate{Value: denV, Variance: denVar}), nil
}

// finish attaches the confidence interval at the given level.
func finish(key []float64, est Estimate, level float64) AQPGroup {
	lo, hi := est.ConfidenceInterval(level)
	return AQPGroup{Key: key, Estimate: est, CILow: lo, CIHigh: hi}
}
