package core

// plan.go implements the engine's compile/execute split. Compile resolves
// everything about a query that does not depend on literal values — SQL
// validation, effective outer tables, the compilation case of Section 4
// (exact RSPN, superset RSPN, median set, or the Theorem-2 branch
// decomposition with per-branch RSPN picks), moment-function maps, filter
// routing across branches, inclusion-exclusion masks, group-key
// enumeration and aggregate member selection — into a Plan. Execution is
// then a pure walk over the prebuilt structure with concrete predicate
// values bound in, so one Plan can serve any number of executions of the
// same query *shape* (a prepared statement with `?` parameters, or a plan
// cache keyed on query.ShapeKey).

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/query"
	"repro/internal/rspn"
	"repro/internal/spn"
)

// ExecOpts are per-execution options, applied at execution time rather
// than engine construction so one plan can serve callers with different
// needs.
type ExecOpts struct {
	// ConfidenceLevel overrides the engine's interval level for this
	// execution; 0 keeps the engine default.
	ConfidenceLevel float64
}

// Plan is a query compiled against the engine's ensemble. A Plan is
// immutable after Compile and safe for concurrent executions; it stays
// valid until the ensemble changes (an Insert/Delete can add group-by keys
// and shift statistics-based choices — recompile after updates, as the
// deepdb facade's generation-tagged plan cache does).
type Plan struct {
	eng     *Engine
	q       query.Query // validated template (may contain placeholders)
	shape   string
	nparams int

	// card estimates COUNT(*) over the join with the query's filters,
	// ignoring GROUP BY and the aggregate — the EstimateCardinality view
	// (and the executed estimator for ungrouped COUNT queries).
	card []signedCount

	// Grouped execution: per-group estimators are compiled from the group
	// template (the query with its group columns as extra equality
	// filters, values bound per key at execution). Group keys are the
	// cartesian product of groupVals (sorted distinct values per column),
	// enumerated lazily by index — numGroups may exceed what the
	// materializing paths accept, and only the streaming iterator visits
	// such plans' keys.
	groupCols []string
	groupVals [][]float64
	numGroups int
	count     []signedCount // per-group COUNT / existence gate / AVG divisor

	// Aggregate estimators (nil unless the aggregate needs them).
	sum []signedSum // SUM terms; also the numerator of disjunctive AVG
	avg *avgNode    // plain (non-disjunctive) AVG ratio

	// The Execute-side estimators (group template, aggregate members,
	// group-key enumeration) compile lazily on first use, guarded by
	// execOnce: EstimateCardinality ignores aggregate and GROUP BY
	// settings by contract and must neither pay for them nor fail on
	// them. execErr holds the (sticky) compilation outcome.
	execOnce sync.Once
	execErr  error
}

// signedCount is one inclusion-exclusion term of a COUNT: the conjunctive
// sub-query selected by mask over the disjunction predicates, compiled to
// a countNode. Queries without a disjunction compile to a single term with
// mask 0 and sign +1.
type signedCount struct {
	sign float64
	mask int
	node *countNode
}

// signedSum is one inclusion-exclusion term of a SUM: either a direct
// single-expectation evaluation on a covering RSPN, or the COUNT * AVG
// fallback of Section 4.2.
type signedSum struct {
	sign   float64
	mask   int
	direct *t1call
	cnt    *countNode
	avg    *avgNode
}

// countKind is the compilation case of a countNode.
type countKind int

const (
	// ckSingle: one covering RSPN answers the node (Cases 1 and 2).
	ckSingle countKind = iota
	// ckMedian: the median over all covering RSPNs (StrategyMedian).
	ckMedian
	// ckTheorem2: a multi-RSPN combination across bridge FK edges.
	ckTheorem2
)

// countNode is a compiled COUNT estimator over one table set.
type countNode struct {
	tables []string
	outer  []string
	kind   countKind

	single t1call   // ckSingle
	median []t1call // ckMedian

	// ckTheorem2: the left sub-join evaluation plus one sub-plan per
	// uncovered branch (fully-outer branches are folded into the left
	// side's max(F,1) factor and have no sub-plan).
	left       t1call
	leftTables []string
	branches   []*branchPlan
}

// branchPlan is one Theorem-2 branch: its compiled sub-estimator, the
// filter columns routed to it, and the bridge metadata for the ratio
// denominator (looked up at execution so maintained statistics stay
// authoritative).
type branchPlan struct {
	br   branch
	keep map[string]bool
	node *countNode
}

// t1call captures one Theorem-1 evaluation: the RSPN, its precomputed
// moment functions (inverse tuple factors plus any Theorem-2 bridge
// factors), inner-join indicator tables, and the filter columns to keep
// (nil passes every predicate through). tmpl is the term's precompiled
// constraint layout — binding a concrete predicate list fills range
// values into prebuilt slots instead of re-deriving column routing per
// evaluation; nil (an unresolvable template) falls back to the generic
// path, which also carries the original error-surfacing behavior.
type t1call struct {
	r     *rspn.RSPN
	fns   map[string]spn.Fn
	inner []string
	keep  map[string]bool
	tmpl  *rspn.TermTemplate
	// keptIdx maps the template's filter ordinals into the full predicate
	// list (nil: identity), so binding skips the filtered copy.
	keptIdx []int
}

// avgNode is a compiled AVG: the chosen RSPN, the resolvable filter
// columns, the numerator/denominator moment functions of the normalized
// conditional expectation of Section 4.2, and the two terms' precompiled
// constraint layouts (nil falls back to the generic path).
type avgNode struct {
	r       *rspn.RSPN
	keep    map[string]bool
	numFns  map[string]spn.Fn
	denFns  map[string]spn.Fn
	inner   []string
	aggCol  string
	numTmpl *rspn.TermTemplate
	denTmpl *rspn.TermTemplate
	keptIdx []int
}

// Compile validates the query and builds its execution plan. Literal
// values (and `?` parameter markers) play no role in compilation, so the
// plan serves every query sharing the template's shape.
func (e *Engine) Compile(q query.Query) (*Plan, error) {
	if err := e.validateQuery(q); err != nil {
		return nil, err
	}
	p := &Plan{eng: e, q: q, shape: q.ShapeKey(), nparams: q.NumParams()}
	var err error
	p.card, err = e.compileCountTerms(q)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// ensureExec compiles the Execute-side estimators on first use (safe
// under concurrent executions); the outcome is sticky for the plan's
// lifetime.
func (p *Plan) ensureExec() error {
	p.execOnce.Do(func() { p.execErr = p.compileExec(p.q) })
	return p.execErr
}

// ExecErr forces the Execute-side compilation and reports its error, so
// callers like Prepare can surface execution-compilation failures eagerly
// without running the query.
func (p *Plan) ExecErr() error { return p.ensureExec() }

// compileExec builds the Execute-side estimators (group template and
// aggregate members). Its error fails Execute but not EstimateCardinality,
// preserving the contract that cardinality estimation ignores aggregate
// and GROUP BY settings.
func (p *Plan) compileExec(q query.Query) error {
	e := p.eng
	gt := q
	if len(q.GroupBy) > 0 {
		var err error
		p.groupCols = q.GroupBy
		p.groupVals, err = e.groupColValues(q)
		if err != nil {
			return err
		}
		p.numGroups, err = groupKeyCount(p.groupVals)
		if err != nil {
			return err
		}
		gt.GroupBy = nil
		gfs := make([]query.Predicate, len(q.GroupBy))
		for i, c := range q.GroupBy {
			gfs[i] = query.Predicate{Column: c, Op: query.Eq}
		}
		gt.Filters = append(append([]query.Predicate(nil), q.Filters...), gfs...)
		p.count, err = e.compileCountTerms(gt)
		if err != nil {
			return err
		}
	}
	var err error
	switch q.Aggregate {
	case query.Count:
		// The count terms above (or card, when ungrouped) are the answer.
	case query.Sum:
		p.sum, err = e.compileSumTerms(gt)
	case query.Avg:
		if len(q.Disjunction) > 0 {
			// AVG over a disjunction is SUM / COUNT over the same masks.
			st := gt
			st.Aggregate = query.Sum
			p.sum, err = e.compileSumTerms(st)
		} else {
			p.avg, err = e.compileAvg(gt)
		}
	default:
		err = fmt.Errorf("core: unsupported aggregate %v", q.Aggregate)
	}
	return err
}

// compileCountTerms expands the query's disjunction (if any) with the
// inclusion-exclusion principle and compiles each signed conjunctive term.
// Outer-table semantics are resolved per term: a disjunct on an outer
// table's column reverts that table to inner-join behaviour within its
// terms only.
func (e *Engine) compileCountTerms(q query.Query) ([]signedCount, error) {
	subs, err := expandInclusionExclusion(q)
	if err != nil {
		return nil, err
	}
	out := make([]signedCount, len(subs))
	for i, sq := range subs {
		node, err := e.compileCount(sq.q.Tables, sq.q.Filters, e.effectiveOuter(sq.q))
		if err != nil {
			return nil, err
		}
		out[i] = signedCount{sign: sq.sign, mask: sq.mask, node: node}
	}
	return out, nil
}

// compileCount dispatches between the single-RSPN cases and Theorem 2 —
// the compile-time mirror of the former per-call estimateCount. preds are
// the template predicates visible at this node; only their columns matter.
func (e *Engine) compileCount(tables []string, preds []query.Predicate, outer []string) (*countNode, error) {
	covering := e.Ens.Covering(tables)
	if len(covering) > 0 {
		if e.Strategy == StrategyMedian && len(covering) > 1 {
			calls := make([]t1call, len(covering))
			for i, r := range covering {
				calls[i] = e.compileT1(r, tables, outer, nil, nil, preds)
			}
			return &countNode{tables: tables, outer: outer, kind: ckMedian, median: calls}, nil
		}
		r := e.pickCovering(covering, preds)
		return &countNode{tables: tables, outer: outer, kind: ckSingle,
			single: e.compileT1(r, tables, outer, nil, nil, preds)}, nil
	}
	return e.compileTheorem2(tables, preds, outer)
}

// compileTheorem2 compiles the multi-RSPN combination of Case 3: the
// best-scoring RSPN answers the largest connected sub-query it covers,
// extended across each bridge FK edge; every remaining branch becomes a
// compiled sub-plan whose ratio divides by its bridgehead's cardinality.
func (e *Engine) compileTheorem2(tables []string, preds []query.Predicate, outer []string) (*countNode, error) {
	r := e.pickPartial(tables, preds)
	if r == nil {
		return nil, fmt.Errorf("core: no RSPN covers any of tables %v", tables)
	}
	sl := e.connectedCovered(tables, r)
	if len(sl) == 0 {
		return nil, fmt.Errorf("core: internal: empty coverage for %v", tables)
	}
	rest := subtract(tables, sl)
	branches, err := e.branchComponents(rest, sl)
	if err != nil {
		return nil, err
	}
	// Bridge factors multiply into the left expectation when the branch
	// head is on the Many side of its bridge edge. A fully-outer branch
	// (all its tables outer-joined, hence unfiltered after WHERE
	// normalization) multiplies by max(F, 1): rows without partners still
	// appear once.
	outerSet := toSet(outer)
	extraFns := map[string]spn.Fn{}
	for _, br := range branches {
		if !br.headIsMany {
			continue
		}
		col := tableTupleFactor(br)
		if !r.HasColumn(col) {
			return nil, fmt.Errorf("core: RSPN %v lacks bridge factor column %s", r.Tables, col)
		}
		if branchAllOuter(br, outerSet) {
			extraFns[col] = spn.FnMax1
		} else {
			extraFns[col] = spn.FnIdent
		}
	}
	node := &countNode{tables: tables, outer: outer, kind: ckTheorem2, leftTables: sl,
		left: e.compileT1(r, sl, intersect(outer, sl), extraFns, e.keepColumns(sl, preds), preds)}
	// Non-outer branches contribute selectivity ratios; unfiltered outer
	// branches are fully handled by the max(F,1) factor above.
	for _, br := range branches {
		if branchAllOuter(br, outerSet) {
			continue
		}
		keep := e.keepColumns(br.tables, preds)
		sub, err := e.compileCount(br.tables, selectPreds(preds, keep), intersect(outer, br.tables))
		if err != nil {
			return nil, err
		}
		node.branches = append(node.branches, &branchPlan{br: br, keep: keep, node: sub})
	}
	return node, nil
}

// compileT1 precomputes one Theorem-1 evaluation on an RSPN, including
// the term's constraint template (derived from the query's template
// predicates — only their columns matter). An unresolvable template (a
// filter the RSPN cannot resolve) leaves tmpl nil so the generic path
// surfaces its error at evaluation time, exactly as before.
func (e *Engine) compileT1(r *rspn.RSPN, tables, outer []string, extraFns map[string]spn.Fn, keep map[string]bool, preds []query.Predicate) t1call {
	fns := map[string]spn.Fn{}
	for _, c := range r.InverseFactorColumns(tables) {
		fns[c] = spn.FnInv
	}
	//deepdb:orderinvariant map-to-map copy; the result is independent of visit order
	for c, fn := range extraFns {
		fns[c] = fn
	}
	// Outer tables keep padded rows: their indicator constraint is
	// dropped, so a row missing the outer side still counts once.
	inner := intersect(subtract(tables, outer), r.Tables)
	call := t1call{r: r, fns: fns, inner: inner, keep: keep}
	kept, keptIdx := keptPreds(preds, keep)
	tmpl, err := r.CompileTerm(rspn.Term{Fns: fns, Filters: kept, InnerTables: inner})
	if err == nil {
		call.tmpl, call.keptIdx = tmpl, keptIdx
	}
	return call
}

// keptPreds is selectPreds plus the kept ordinals (nil when keep is nil,
// i.e. every predicate passes through at its own position). Compile-time
// only: the ordinals are what lets exec-time template binding skip the
// filtered copy, so both functions must share one keep rule (keepsPred).
func keptPreds(preds []query.Predicate, keep map[string]bool) ([]query.Predicate, []int) {
	if keep == nil {
		return preds, nil
	}
	kept := make([]query.Predicate, 0, len(preds))
	idx := make([]int, 0, len(preds))
	for i, f := range preds {
		if keepsPred(keep, f) {
			kept = append(kept, f)
			idx = append(idx, i)
		}
	}
	return kept, idx
}

// keepsPred is the one predicate-selection rule shared by selectPreds and
// keptPreds (nil keeps all).
func keepsPred(keep map[string]bool, f query.Predicate) bool {
	return keep == nil || keep[f.Column]
}

// compileSumTerms compiles the signed SUM terms of the (possibly
// disjunctive) query.
func (e *Engine) compileSumTerms(q query.Query) ([]signedSum, error) {
	subs, err := expandInclusionExclusion(q)
	if err != nil {
		return nil, err
	}
	out := make([]signedSum, len(subs))
	for i, sq := range subs {
		st, err := e.compileSum(sq.q)
		if err != nil {
			return nil, err
		}
		st.sign, st.mask = sq.sign, sq.mask
		out[i] = st
	}
	return out, nil
}

// compileSum compiles one conjunctive SUM. With a covering RSPN that owns
// the aggregate column and resolves every filter, the sum is a single
// expectation |J| * E(A/F' * 1_C * N); otherwise it is COUNT * AVG as in
// Section 4.2.
func (e *Engine) compileSum(q query.Query) (signedSum, error) {
	if covering := e.Ens.Covering(q.Tables); len(covering) > 0 {
		for _, r := range covering {
			if !r.HasColumn(q.AggColumn) {
				continue
			}
			resolved := 0
			for _, f := range q.Filters {
				if r.ResolvesColumn(f.Column) {
					resolved++
				}
			}
			if resolved != len(q.Filters) {
				continue // cannot resolve all filters; try another member
			}
			call := e.compileT1(r, q.Tables, e.effectiveOuter(q),
				map[string]spn.Fn{q.AggColumn: spn.FnIdent}, nil, q.Filters)
			return signedSum{direct: &call}, nil
		}
	}
	// COUNT * AVG fallback. The count must range over rows with a non-NULL
	// aggregate column to match SQL SUM semantics; the AVG denominator
	// already does, so the product is consistent up to NULL skew.
	cnt, err := e.compileCount(q.Tables, q.Filters, e.effectiveOuter(q))
	if err != nil {
		return signedSum{}, err
	}
	av, err := e.compileAvg(q)
	if err != nil {
		return signedSum{}, err
	}
	return signedSum{cnt: cnt, avg: av}, nil
}

// compileAvg compiles an AVG as the ratio of expectations of Section 4.2,
// restricted to the filters the chosen RSPN can resolve (the paper drops
// the rest, accepting an approximation).
func (e *Engine) compileAvg(q query.Query) (*avgNode, error) {
	r, err := e.pickForAggregate(q)
	if err != nil {
		return nil, err
	}
	keep := map[string]bool{}
	for _, f := range q.Filters {
		if r.ResolvesColumn(f.Column) {
			keep[f.Column] = true
		}
	}
	inner := intersect(subtract(q.Tables, e.effectiveOuter(q)), r.Tables)
	numFns := map[string]spn.Fn{q.AggColumn: spn.FnIdent}
	denFns := map[string]spn.Fn{}
	for _, c := range r.InverseFactorColumns(q.Tables) {
		numFns[c] = spn.FnInv
		denFns[c] = spn.FnInv
	}
	a := &avgNode{r: r, keep: keep, numFns: numFns, denFns: denFns, inner: inner, aggCol: q.AggColumn}
	kept, keptIdx := keptPreds(q.Filters, keep)
	a.keptIdx = keptIdx
	if tmpl, err := r.CompileTerm(rspn.Term{Fns: numFns, Filters: kept, InnerTables: inner}); err == nil {
		a.numTmpl = tmpl
	}
	if tmpl, err := r.CompileTerm(rspn.Term{Fns: denFns, Filters: kept, InnerTables: inner, NotNull: []string{q.AggColumn}}); err == nil {
		a.denTmpl = tmpl
	}
	return a, nil
}

// keepColumns returns the filter columns owned by one of the tables —
// the compile-time image of the former per-call filtersFor.
func (e *Engine) keepColumns(tables []string, preds []query.Predicate) map[string]bool {
	out := map[string]bool{}
	for _, f := range preds {
		if e.columnOwner(f.Column, tables) != "" {
			out[f.Column] = true
		}
	}
	return out
}

// selectPreds keeps the predicates passing keepsPred (nil keeps all) —
// the exec-path variant of keptPreds, without the ordinal allocation.
func selectPreds(preds []query.Predicate, keep map[string]bool) []query.Predicate {
	if keep == nil {
		return preds
	}
	var out []query.Predicate
	for _, f := range preds {
		if keepsPred(keep, f) {
			out = append(out, f)
		}
	}
	return out
}

// ---- plan accessors ----

// Shape returns the plan's normalized shape key (query.ShapeKey of its
// template).
func (p *Plan) Shape() string { return p.shape }

// NumParams returns the number of parameter placeholders in the template.
func (p *Plan) NumParams() int { return p.nparams }

// Query returns the compiled template.
func (p *Plan) Query() query.Query { return p.q }

// RSPNs returns every ensemble member the plan's estimators can touch, in
// first-use order — the routing metadata a sharded serving tier needs to
// know which shards a query fans out to. The walk covers the cardinality
// terms plus, when the Execute side compiles cleanly, the group gates and
// aggregate members; a plan whose Execute side cannot compile still
// reports its cardinality members (estimate-only serving stays routable).
func (p *Plan) RSPNs() []*rspn.RSPN {
	var out []*rspn.RSPN
	seen := map[*rspn.RSPN]bool{}
	add := func(r *rspn.RSPN) {
		if r != nil && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	var walkCount func(n *countNode)
	walkCount = func(n *countNode) {
		if n == nil {
			return
		}
		switch n.kind {
		case ckSingle:
			add(n.single.r)
		case ckMedian:
			for _, c := range n.median {
				add(c.r)
			}
		default: // ckTheorem2
			add(n.left.r)
			for _, br := range n.branches {
				walkCount(br.node)
			}
		}
	}
	for _, t := range p.card {
		walkCount(t.node)
	}
	if p.ensureExec() == nil {
		for _, t := range p.count {
			walkCount(t.node)
		}
		for _, s := range p.sum {
			if s.direct != nil {
				add(s.direct.r)
			}
			walkCount(s.cnt)
			if s.avg != nil {
				add(s.avg.r)
			}
		}
		if p.avg != nil {
			add(p.avg.r)
		}
	}
	return out
}

// ---- execution entry points ----
//
// Execution itself — the batched gather/evaluate/resolve walk — lives in
// plan_exec.go.

// Execute runs the plan with the given parameter values bound into its
// placeholders (none for a literal query).
func (p *Plan) Execute(ctx context.Context, params ...float64) (AQPResult, error) {
	return p.ExecuteOpts(ctx, ExecOpts{}, params...)
}

// ExecuteOpts is Execute with per-call options.
func (p *Plan) ExecuteOpts(ctx context.Context, opts ExecOpts, params ...float64) (AQPResult, error) {
	q, err := p.q.Bind(params...)
	if err != nil {
		return AQPResult{}, err
	}
	return p.ExecuteQuery(ctx, opts, q)
}

// EstimateCardinality estimates COUNT(*) over the join with the bound
// filters, ignoring aggregate and GROUP BY settings.
func (p *Plan) EstimateCardinality(ctx context.Context, params ...float64) (Estimate, error) {
	q, err := p.q.Bind(params...)
	if err != nil {
		return Estimate{}, err
	}
	return p.EstimateCardinalityQuery(ctx, q)
}

// checkBound verifies the concrete query is parameter-free and matches the
// plan's shape.
func (p *Plan) checkBound(q query.Query) error {
	if n := q.NumParams(); n > 0 {
		return fmt.Errorf("core: query has %d unbound parameters (bind values before executing, or use the params form)", n)
	}
	if !query.SameShape(p.q, q) {
		return fmt.Errorf("core: query shape does not match the compiled plan (plan %s)", p.shape)
	}
	return nil
}

// level resolves the effective confidence level for one execution.
func (p *Plan) level(opts ExecOpts) float64 {
	level := opts.ConfidenceLevel
	if level <= 0 || level >= 1 {
		level = p.eng.ConfidenceLevel
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	return level
}

// maskPreds appends the disjunction predicates selected by mask to the
// base conjuncts.
func maskPreds(base, disj []query.Predicate, mask int) []query.Predicate {
	if mask == 0 {
		return base
	}
	out := make([]query.Predicate, 0, len(base)+len(disj))
	out = append(out, base...)
	for i := 0; i < len(disj); i++ {
		if mask&(1<<i) != 0 {
			out = append(out, disj[i])
		}
	}
	return out
}

// finish attaches the confidence interval at the given level.
func finish(key []float64, est Estimate, level float64) AQPGroup {
	lo, hi := est.ConfidenceInterval(level)
	return AQPGroup{Key: key, Estimate: est, CILow: lo, CIHigh: hi}
}
