package core

// plan_iter_mem_test.go proves the streaming GROUP BY memory contract: a
// grouped query whose key space is 10^6 combinations — ten times the
// materializing executor's cap — streams to completion inside a fixed heap
// budget, because only one chunk of group keys is ever resident.

import (
	"context"
	"math"
	"runtime"
	"testing"

	"repro/internal/ensemble"
	"repro/internal/query"
	"repro/internal/rspn"
	"repro/internal/schema"
	"repro/internal/table"
)

// millionKeyEngine learns a single-table model whose two group columns
// have 1000 distinct values each, so GROUP BY g1, g2 enumerates 10^6
// candidate keys. g2 = 7*g1 mod 1000 is declared as a functional
// dependency: the model itself learns only g1 (one exact leaf — cheap to
// evaluate a million times), g2 enumerates through the FD dictionary, and
// exactly 1000 (g1, g2) pairs are consistent — the non-empty groups.
func millionKeyEngine(t *testing.T) *Engine {
	t.Helper()
	s := &schema.Schema{Tables: []*schema.Table{{
		Name: "wide",
		Columns: []schema.Column{
			{Name: "w_id", Kind: schema.IntKind},
			{Name: "g1", Kind: schema.IntKind},
			{Name: "g2", Kind: schema.IntKind},
		},
		PrimaryKey: "w_id",
		FDs:        []schema.FunctionalDependency{{Determinant: "g1", Dependent: "g2"}},
	}}}
	tab := table.New(s.Table("wide"))
	for i := 0; i < 1000; i++ {
		tab.AppendRow(table.Int(i), table.Int(i), table.Int((7*i)%1000))
	}
	fd, err := rspn.BuildFD(tab, s.Table("wide").FDs[0])
	if err != nil {
		t.Fatal(err)
	}
	fds := []rspn.FD{fd}
	opts := rspn.DefaultLearnOptions()
	cols := rspn.LearnColumns(s, tab, []string{"wide"}, fds)
	r, err := rspn.Learn(context.Background(), tab, []string{"wide"}, nil, cols, fds, opts)
	if err != nil {
		t.Fatal(err)
	}
	ens := ensemble.NewManual(s, map[string]*table.Table{"wide": tab},
		[]*rspn.RSPN{r}, ensemble.DefaultConfig())
	return New(ens)
}

// TestGroupIterMillionKeysBoundedMemory drains a 10^6-key GROUP BY through
// the streaming iterator and asserts the live heap never grows past a
// fixed budget — materializing the same key space would need well over
// 100 MB of bindings alone (and the materializing executor refuses it
// outright, which the test also pins down).
func TestGroupIterMillionKeysBoundedMemory(t *testing.T) {
	e := millionKeyEngine(t)
	q := query.Query{Aggregate: query.Count, Tables: []string{"wide"},
		GroupBy: []string{"g1", "g2"}}
	p, err := e.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	// The eager path must refuse this key space, not try to materialize it.
	if _, err := p.ExecuteQuery(context.Background(), ExecOpts{}, q); err == nil {
		t.Fatal("materializing executor accepted a million-key group-by")
	}

	const heapBudget = 64 << 20 // bytes of allowed live-heap growth
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc

	it, err := p.ExecuteGroupsIter(context.Background(), ExecOpts{}, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	var peak uint64
	for it.Next() {
		g := it.Group()
		rows++
		// Each consistent (g1, 7*g1 mod 1000) pair holds exactly one row.
		if math.Abs(g.Estimate.Value-1) > 1e-6 {
			t.Fatalf("group %v estimated %v rows, want 1", g.Key, g.Estimate.Value)
		}
		if rows%100 == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak {
		peak = ms.HeapAlloc
	}
	if rows != 1000 {
		t.Fatalf("streamed %d non-empty groups, want the 1000 FD-consistent pairs", rows)
	}
	if peak > baseline && peak-baseline > heapBudget {
		t.Fatalf("live heap grew %d bytes during streaming (budget %d)",
			peak-baseline, heapBudget)
	}
}
