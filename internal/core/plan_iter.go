package core

// plan_iter.go streams grouped executions. Execute/ExecuteBatch bind one
// estimator per group key up front, which is fine for dashboards but
// materializes O(keys) state; GroupIter runs the same two-stage gated
// pipeline (COUNT gate batch, then aggregate batch over live groups) one
// bounded chunk of the key space at a time, so a GROUP BY over millions
// of keys executes in O(chunk) memory. Group keys are enumerated lazily
// in lexicographic order — the same order the materializing path emits —
// and every estimate goes through the identical enqueue/resolve walk, so
// the streamed rows are bit-identical to ExecuteQuery's, in the same
// order.

import (
	"context"
	"sort"

	"repro/internal/query"
)

// DefaultGroupChunk is the group-key chunk size of ExecuteGroupsIter when
// the caller passes no explicit size.
const DefaultGroupChunk = 256

// GroupIter streams the result rows of one grouped execution. Use it as:
//
//	it, err := plan.ExecuteGroupsIter(ctx, opts, q, 0)
//	for it.Next() {
//		g := it.Group()
//		...
//	}
//	if err := it.Err(); err != nil { ... }
//
// A GroupIter is single-use and not safe for concurrent use.
type GroupIter struct {
	p     *Plan
	ctx   context.Context
	q     query.Query
	level float64
	chunk int

	pos  int // next group-key ordinal to execute
	done bool
	buf  []AQPGroup // rows of the current chunk
	bi   int        // index into buf of the current row (-1 before Next)
	err  error
}

// ExecuteGroupsIter begins a streamed execution of the bound query q
// (which must share the plan's shape), emitting result rows in group-key
// order. chunkSize bounds how many group keys are gated and aggregated
// per evaluation round; values <= 0 use DefaultGroupChunk. Ungrouped
// queries yield their single row. Unlike Execute, the iterator accepts
// plans whose group count exceeds the materializing paths' bound.
func (p *Plan) ExecuteGroupsIter(ctx context.Context, opts ExecOpts, q query.Query, chunkSize int) (*GroupIter, error) {
	if err := p.checkBound(q); err != nil {
		return nil, err
	}
	if err := p.ensureExec(); err != nil {
		return nil, err
	}
	if chunkSize <= 0 {
		chunkSize = DefaultGroupChunk
	}
	it := &GroupIter{p: p, ctx: ctx, q: q, level: p.level(opts), chunk: chunkSize, bi: -1}
	if len(p.groupCols) == 0 {
		res, err := p.ExecuteQuery(ctx, opts, q)
		if err != nil {
			return nil, err
		}
		it.buf = res.Groups
		it.done = true
	}
	return it, nil
}

// Next advances to the next result row, running the next key chunks as
// needed. It returns false when the rows are exhausted or an execution
// error occurred (check Err).
func (it *GroupIter) Next() bool {
	if it.err != nil {
		return false
	}
	it.bi++
	for it.bi >= len(it.buf) {
		if it.done || it.err != nil {
			return false
		}
		it.fill()
	}
	return true
}

// Group returns the current row. Valid after a true Next; the returned
// group (and its key slice) remains valid after further Next calls.
func (it *GroupIter) Group() AQPGroup { return it.buf[it.bi] }

// Err returns the first execution error, if any.
func (it *GroupIter) Err() error { return it.err }

// fill executes key chunks until one yields at least one live group or
// the key space is exhausted.
func (it *GroupIter) fill() {
	p := it.p
	it.buf, it.bi = it.buf[:0], 0
	for it.pos < p.numGroups {
		lo := it.pos
		hi := lo + it.chunk
		if hi > p.numGroups {
			hi = p.numGroups
		}
		it.pos = hi
		groups, err := p.executeGroupChunk(it.ctx, it.q, it.level, lo, hi)
		if err != nil {
			it.err = err
			return
		}
		if len(groups) > 0 {
			it.buf = groups
			return
		}
	}
	it.done = true
}

// executeGroupChunk runs the two-stage gated pipeline over group-key
// ordinals [lo, hi): one gate batch for the chunk's keys, then one
// aggregate batch over its live groups — the chunk-local image of
// executeGroupsBatch for a single query. Keys are enumerated in ascending
// ordinal (lexicographic) order and the chunk is sorted the same way the
// materializing path sorts its full result, so concatenated chunks
// reproduce that result row for row.
func (p *Plan) executeGroupChunk(ctx context.Context, q query.Query, level float64, lo, hi int) ([]AQPGroup, error) {
	nk := hi - lo
	bindings := make([][]query.Predicate, nk)
	gates := make([]estimator, nk)
	b := newBatcher(2 * nk)
	var keyBuf []float64
	for ki := 0; ki < nk; ki++ {
		keyBuf = groupKeyAt(p.groupVals, lo+ki, keyBuf)
		preds := make([]query.Predicate, 0, len(q.Filters)+len(keyBuf))
		preds = append(preds, q.Filters...)
		preds = append(preds, groupFilters(p.groupCols, keyBuf)...)
		bindings[ki] = preds
		res, err := p.enqueueCount(b, p.count, preds, q.Disjunction)
		if err != nil {
			return nil, err
		}
		gates[ki] = res
	}
	if err := b.run(ctx, p.eng); err != nil {
		return nil, err
	}
	counts := make([]Estimate, nk)
	live := make([]bool, nk)
	for ki, res := range gates {
		est, err := res()
		if err != nil {
			return nil, err
		}
		counts[ki] = est
		live[ki] = est.Value >= 0.5
	}
	aggs := make([]estimator, nk)
	if p.q.Aggregate != query.Count {
		b2 := newBatcher(2 * nk)
		for ki := 0; ki < nk; ki++ {
			if !live[ki] {
				continue
			}
			res, err := p.enqueueAggregate(b2, p.count, bindings[ki], q.Disjunction)
			if err != nil {
				return nil, err
			}
			aggs[ki] = res
		}
		if err := b2.run(ctx, p.eng); err != nil {
			return nil, err
		}
	}
	var groups []AQPGroup
	for ki := 0; ki < nk; ki++ {
		if !live[ki] {
			continue
		}
		est := counts[ki]
		if aggs[ki] != nil {
			var err error
			est, err = aggs[ki]()
			if err != nil {
				return nil, err
			}
		}
		groups = append(groups, finish(groupKeyAt(p.groupVals, lo+ki, nil), est, level))
	}
	sort.Slice(groups, func(i, j int) bool {
		a, b := groups[i].Key, groups[j].Key
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return groups, nil
}
