package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/query"
)

// Explain renders the execution plan for a query without evaluating it:
// which compilation case of Section 4 applies (exact-match RSPN, superset
// RSPN with 1/F' normalization, or the Theorem-2 combination across bridge
// FK edges) and which ensemble members answer each part. The output is
// produced from the same compiled Plan that Execute walks, so it describes
// exactly the plan that would run.
func (e *Engine) Explain(ctx context.Context, q query.Query) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	p, err := e.Compile(q)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// Explain renders the compiled plan.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", p.q.String())
	if p.nparams > 0 {
		fmt.Fprintf(&b, "parameters: %d placeholder(s), bound at execution\n", p.nparams)
	}
	if err := p.ensureExec(); err != nil {
		fmt.Fprintf(&b, "execution would fail: %v\n", err)
		p.explainCountTerms(&b, p.card, p.q.Filters)
		return b.String()
	}
	if len(p.groupCols) > 0 {
		fmt.Fprintf(&b, "group-by: one estimate per key combination of %s (%d keys enumerated from model leaves)\n",
			strings.Join(p.groupCols, ", "), p.numGroups)
	}
	if k := len(p.q.Disjunction); k > 0 {
		fmt.Fprintf(&b, "disjunction: inclusion-exclusion over %d OR-terms (%d conjunctive sub-queries; the fully-conjoined term is shown)\n",
			k, (1<<k)-1)
	}
	// The predicates of the rendered term: base filters, group-key
	// placeholders, and — for disjunctions — every disjunct (the
	// fully-conjoined inclusion-exclusion term).
	preds := append([]query.Predicate(nil), p.q.Filters...)
	counts := p.card
	if len(p.groupCols) > 0 {
		counts = p.count
		for _, c := range p.groupCols {
			preds = append(preds, query.Predicate{Column: c, Op: query.Eq})
		}
	}
	preds = append(preds, p.q.Disjunction...)
	switch {
	case p.avg != nil:
		fmt.Fprintf(&b, "avg: RSPN[%s] ratio of expectations (Section 4.2), resolving %d/%d filters\n",
			strings.Join(p.avg.r.Tables, " |x| "), countResolved(p.avg.r, preds), len(preds))
		if len(p.groupCols) > 0 {
			b.WriteString("group existence gate (COUNT >= 0.5):\n")
			p.explainCountTerms(&b, counts, preds)
		}
	case len(p.sum) > 0:
		last := p.sum[len(p.sum)-1]
		if last.direct != nil {
			fmt.Fprintf(&b, "sum: single expectation on RSPN[%s] (covering member resolves all filters)\n",
				strings.Join(last.direct.r.Tables, " |x| "))
		} else {
			fmt.Fprintf(&b, "sum: COUNT * AVG fallback (AVG on RSPN[%s], resolving %d/%d filters); COUNT plan:\n",
				strings.Join(last.avg.r.Tables, " |x| "), countResolved(last.avg.r, preds), len(preds))
			last.cnt.explain(&b, "  ", preds)
		}
		if p.q.Aggregate == query.Avg || len(p.groupCols) > 0 {
			b.WriteString("count divisor / group gate:\n")
			p.explainCountTerms(&b, counts, preds)
		}
	default:
		p.explainCountTerms(&b, counts, preds)
	}
	return b.String()
}

// explainCountTerms renders the count estimator: the single compiled node,
// or — for disjunctions — the fully-conjoined inclusion-exclusion term as
// the representative.
func (p *Plan) explainCountTerms(b *strings.Builder, terms []signedCount, preds []query.Predicate) {
	if len(terms) == 0 {
		return
	}
	terms[len(terms)-1].node.explain(b, "", preds)
}

// explain narrates one compiled count node.
func (n *countNode) explain(b *strings.Builder, indent string, preds []query.Predicate) {
	switch n.kind {
	case ckMedian:
		fmt.Fprintf(b, "%smedian over %d covering RSPNs:\n", indent, len(n.median))
		for _, c := range n.median {
			fmt.Fprintf(b, "%s  RSPN[%s]\n", indent, strings.Join(c.r.Tables, " |x| "))
		}
	case ckSingle:
		kase := "case 1 (exact table match)"
		if len(n.single.r.Tables) > len(n.tables) {
			kase = "case 2 (superset RSPN, 1/F' tuple-factor normalization)"
		}
		fmt.Fprintf(b, "%s%s: RSPN[%s] answers %s, resolving %d/%d filters\n",
			indent, kase, strings.Join(n.single.r.Tables, " |x| "), strings.Join(n.tables, ", "),
			countResolved(n.single.r, preds), len(preds))
	default:
		fmt.Fprintf(b, "%scase 3 (Theorem 2): RSPN[%s] answers sub-join %s\n",
			indent, strings.Join(n.left.r.Tables, " |x| "), strings.Join(n.leftTables, ", "))
		for _, bp := range n.branches {
			fmt.Fprintf(b, "%s  branch %s via bridge %s<-%s (ratio count/|%s|):\n",
				indent, strings.Join(bp.br.tables, ", "), bp.br.bridgeOne, bp.br.bridgeMany, bp.br.head)
			bp.node.explain(b, indent+"    ", selectPreds(preds, bp.keep))
		}
	}
}

func countResolved(r interface{ ResolvesColumn(string) bool }, filters []query.Predicate) int {
	n := 0
	for _, f := range filters {
		if r.ResolvesColumn(f.Column) {
			n++
		}
	}
	return n
}
