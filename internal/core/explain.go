package core

import (
	"fmt"
	"strings"

	"repro/internal/query"
)

// Explain renders the execution plan the engine would choose for a query
// without evaluating it: which compilation case of Section 4 applies
// (exact-match RSPN, superset RSPN with 1/F' normalization, or the
// Theorem-2 combination across bridge FK edges) and which ensemble members
// answer each part.
func (e *Engine) Explain(q query.Query) (string, error) {
	if err := e.validateQuery(q); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", q.String())
	if len(q.GroupBy) > 0 {
		fmt.Fprintf(&b, "group-by: one estimate per key combination of %s (keys enumerated from model leaves)\n",
			strings.Join(q.GroupBy, ", "))
	}
	if len(q.Disjunction) > 0 {
		fmt.Fprintf(&b, "disjunction: inclusion-exclusion over %d OR-terms (%d conjunctive sub-queries)\n",
			len(q.Disjunction), (1<<len(q.Disjunction))-1)
	}
	e.explainCount(&b, "", q.Tables, q.Filters)
	return b.String(), nil
}

// explainCount narrates the estimateCount dispatch for one table set.
func (e *Engine) explainCount(b *strings.Builder, indent string, tables []string, filters []query.Predicate) {
	covering := e.Ens.Covering(tables)
	if len(covering) > 0 {
		if e.Strategy == StrategyMedian && len(covering) > 1 {
			fmt.Fprintf(b, "%smedian over %d covering RSPNs:\n", indent, len(covering))
			for _, r := range covering {
				fmt.Fprintf(b, "%s  RSPN[%s]\n", indent, strings.Join(r.Tables, " |x| "))
			}
			return
		}
		r := e.pickCovering(covering, filters)
		kase := "case 1 (exact table match)"
		if len(r.Tables) > len(tables) {
			kase = "case 2 (superset RSPN, 1/F' tuple-factor normalization)"
		}
		fmt.Fprintf(b, "%s%s: RSPN[%s] answers %s, resolving %d/%d filters\n",
			indent, kase, strings.Join(r.Tables, " |x| "), strings.Join(tables, ", "),
			countResolved(r, filters), len(filters))
		return
	}
	r := e.pickPartial(tables, filters)
	if r == nil {
		fmt.Fprintf(b, "%sno RSPN covers any of %s — the query would fail\n", indent, strings.Join(tables, ", "))
		return
	}
	sl := e.connectedCovered(tables, r)
	fmt.Fprintf(b, "%scase 3 (Theorem 2): RSPN[%s] answers sub-join %s\n",
		indent, strings.Join(r.Tables, " |x| "), strings.Join(sl, ", "))
	rest := subtract(tables, sl)
	branches, err := e.branchComponents(rest, sl)
	if err != nil {
		fmt.Fprintf(b, "%s  branch decomposition failed: %v\n", indent, err)
		return
	}
	for _, br := range branches {
		fmt.Fprintf(b, "%s  branch %s via bridge %s<-%s (ratio count/|%s|):\n",
			indent, strings.Join(br.tables, ", "), br.bridgeOne, br.bridgeMany, br.head)
		e.explainCount(b, indent+"    ", br.tables, filtersFor(e, br.tables, filters))
	}
}

func countResolved(r interface{ ResolvesColumn(string) bool }, filters []query.Predicate) int {
	n := 0
	for _, f := range filters {
		if r.ResolvesColumn(f.Column) {
			n++
		}
	}
	return n
}
