package core

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/query"
)

// Outer-join semantics (Section 4.2): on the Figure 5 data,
// customer LEFT JOIN orders has 5 rows (customer 2 kept with NULL order),
// while the inner join has 4.

func TestExactOuterJoinCount(t *testing.T) {
	s, tabs := figure5(t)
	oracle := exact.New(s, tabs)
	q := query.Query{Aggregate: query.Count,
		Tables: []string{"customer", "orders"}, OuterTables: []string{"orders"}}
	res, err := oracle.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != 5 {
		t.Fatalf("LEFT JOIN count = %v, want 5", res.Scalar())
	}
	// A WHERE predicate on the outer side reverts to inner semantics.
	online := float64(tabs["orders"].Column("o_channel").Lookup("ONLINE"))
	qf := q
	qf.Filters = []query.Predicate{{Column: "o_channel", Op: query.Eq, Value: online}}
	res, err = oracle.Execute(qf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != 2 {
		t.Fatalf("filtered LEFT JOIN count = %v, want 2", res.Scalar())
	}
}

func TestEngineOuterJoinCase1(t *testing.T) {
	// Joint RSPN covers both tables: dropping the orders indicator gives
	// the exact left-join count.
	e, _, _ := exactEnsemble(t, true)
	q := query.Query{Aggregate: query.Count,
		Tables: []string{"customer", "orders"}, OuterTables: []string{"orders"}}
	est, err := e.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-5) > 1e-9 {
		t.Fatalf("LEFT JOIN estimate (Case 1) = %v, want 5", est.Value)
	}
}

func TestEngineOuterJoinCase3(t *testing.T) {
	// Single-table RSPNs: the outer branch multiplies max(F, 1) on the
	// customer RSPN: max(2,1)+max(0,1)+max(2,1) = 5.
	e, _, _ := exactEnsemble(t, false)
	q := query.Query{Aggregate: query.Count,
		Tables: []string{"customer", "orders"}, OuterTables: []string{"orders"}}
	est, err := e.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-5) > 1e-9 {
		t.Fatalf("LEFT JOIN estimate (Case 3) = %v, want 5", est.Value)
	}
}

func TestEngineOuterJoinWithInnerFilter(t *testing.T) {
	// Filter on the preserved (customer) side: EU customers keep their
	// padded row -> rows (c1,o1), (c1,o2), (c2,NULL) = 3.
	for _, joint := range []bool{true, false} {
		e, _, tabs := exactEnsemble(t, joint)
		q := query.Query{Aggregate: query.Count,
			Tables: []string{"customer", "orders"}, OuterTables: []string{"orders"},
			Filters: []query.Predicate{{Column: "c_region", Op: query.Eq, Value: euCode(tabs)}}}
		est, err := e.EstimateCardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.Value-3) > 1e-9 {
			t.Fatalf("joint=%v: filtered LEFT JOIN estimate = %v, want 3", joint, est.Value)
		}
	}
}

func TestEngineOuterFilterOnOuterSideRevertsToInner(t *testing.T) {
	for _, joint := range []bool{true, false} {
		e, _, tabs := exactEnsemble(t, joint)
		q := query.Query{Aggregate: query.Count,
			Tables: []string{"customer", "orders"}, OuterTables: []string{"orders"},
			Filters: []query.Predicate{{Column: "o_channel", Op: query.Eq, Value: onlineCode(tabs)}}}
		est, err := e.EstimateCardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.Value-2) > 1e-9 {
			t.Fatalf("joint=%v: estimate = %v, want 2 (WHERE kills padded rows)", joint, est.Value)
		}
	}
}

func TestOuterTableValidation(t *testing.T) {
	e, _, _ := exactEnsemble(t, true)
	q := query.Query{Aggregate: query.Count, Tables: []string{"customer"},
		OuterTables: []string{"orders"}}
	if _, err := e.EstimateCardinality(q); err == nil {
		t.Fatal("expected validation error: outer table not in table list")
	}
}

func TestOuterJoinAgainstOracle(t *testing.T) {
	// Statistical check on the generated 3-table chain: LEFT JOIN counts
	// from the model track the oracle.
	eng, oracle := buildChainEngine(t, 0)
	q := query.Query{Aggregate: query.Count,
		Tables: []string{"customer", "orders"}, OuterTables: []string{"orders"},
		Filters: []query.Predicate{{Column: "c_region", Op: query.Eq, Value: 1}}}
	truth, err := oracle.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	est, err := eng.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if qe := query.QError(est.Value, truth.Scalar()); qe > 2 {
		t.Fatalf("outer-join q-error %.2f (est %.1f true %.1f)", qe, est.Value, truth.Scalar())
	}
}
