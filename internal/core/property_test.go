package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/query"
)

// Property-style tests over randomly generated queries on the chain
// fixture: the engine must satisfy structural invariants for every query in
// its supported class, not just hand-picked ones.

// randomChainQuery draws a random COUNT query over the chain schema.
func randomChainQuery(rng *rand.Rand) query.Query {
	tableSets := [][]string{
		{"customer"}, {"orders"}, {"orderline"},
		{"customer", "orders"}, {"orders", "orderline"},
		{"customer", "orders", "orderline"},
	}
	tables := tableSets[rng.Intn(len(tableSets))]
	var filters []query.Predicate
	candidates := []struct {
		col    string
		owner  string
		lo, hi float64
	}{
		{"c_age", "customer", 20, 80},
		{"c_region", "customer", 0, 2},
		{"o_channel", "orders", 0, 2},
		{"l_qty", "orderline", 0, 25},
	}
	inSet := map[string]bool{}
	for _, t := range tables {
		inSet[t] = true
	}
	for _, c := range candidates {
		if !inSet[c.owner] || rng.Float64() < 0.5 {
			continue
		}
		v := c.lo + math.Floor(rng.Float64()*(c.hi-c.lo))
		ops := []query.Op{query.Eq, query.Le, query.Ge, query.Lt, query.Gt, query.Ne}
		filters = append(filters, query.Predicate{Column: c.col, Op: ops[rng.Intn(len(ops))], Value: v})
	}
	return query.Query{Aggregate: query.Count, Tables: tables, Filters: filters}
}

func TestCountEstimatesNonNegativeAndBounded(t *testing.T) {
	eng, oracle := buildChainEngine(t, 0)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 60; i++ {
		q := randomChainQuery(rng)
		est, err := eng.EstimateCardinality(q)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if est.Value < 0 {
			t.Fatalf("%v: negative estimate %v", q, est.Value)
		}
		if est.Variance < 0 {
			t.Fatalf("%v: negative variance %v", q, est.Variance)
		}
		// An unfiltered version must estimate at least as many rows.
		uq := q
		uq.Filters = nil
		uest, err := eng.EstimateCardinality(uq)
		if err != nil {
			t.Fatal(err)
		}
		if est.Value > uest.Value*1.01+1 {
			t.Fatalf("%v: filtered estimate %v exceeds unfiltered %v", q, est.Value, uest.Value)
		}
		// And stay within a sane factor of the exact join size.
		js, err := oracle.JoinSize(q.Tables)
		if err != nil {
			t.Fatal(err)
		}
		if est.Value > js*1.5+1 {
			t.Fatalf("%v: estimate %v far exceeds join size %v", q, est.Value, js)
		}
	}
}

func TestFilterMonotonicity(t *testing.T) {
	eng, _ := buildChainEngine(t, 0)
	rng := rand.New(rand.NewSource(78))
	for i := 0; i < 40; i++ {
		q := randomChainQuery(rng)
		est, err := eng.EstimateCardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		// Adding one more conjunct can only shrink the estimate (the term
		// adds constraints to the same expectation).
		extra := q.WithExtraFilter(query.Predicate{Column: firstColOf(q), Op: query.Ge, Value: 1})
		est2, err := eng.EstimateCardinality(extra)
		if err != nil {
			t.Fatal(err)
		}
		if est2.Value > est.Value*1.01+1e-9 {
			t.Fatalf("%v: adding a filter grew the estimate %v -> %v", q, est.Value, est2.Value)
		}
	}
}

func firstColOf(q query.Query) string {
	switch q.Tables[0] {
	case "customer":
		return "c_age"
	case "orders":
		return "o_channel"
	default:
		return "l_qty"
	}
}

func TestSumConsistentWithCountTimesAvg(t *testing.T) {
	eng, _ := buildChainEngine(t, 0)
	q := query.Query{Aggregate: query.Sum, AggColumn: "l_qty",
		Tables:  []string{"orders", "orderline"},
		Filters: []query.Predicate{{Column: "o_channel", Op: query.Eq, Value: 1}}}
	sum, err := eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	cq := q
	cq.Aggregate = query.Count
	cq.AggColumn = ""
	cnt, err := eng.Execute(cq)
	if err != nil {
		t.Fatal(err)
	}
	aq := q
	aq.Aggregate = query.Avg
	avg, err := eng.Execute(aq)
	if err != nil {
		t.Fatal(err)
	}
	product := cnt.Groups[0].Estimate.Value * avg.Groups[0].Estimate.Value
	s := sum.Groups[0].Estimate.Value
	if s == 0 || math.Abs(product-s)/s > 0.2 {
		t.Fatalf("SUM %v vs COUNT*AVG %v inconsistent", s, product)
	}
}

func TestGroupEstimatesSumToTotal(t *testing.T) {
	eng, _ := buildChainEngine(t, 0)
	q := query.Query{Aggregate: query.Count, Tables: []string{"customer"},
		GroupBy: []string{"c_region"}}
	res, err := eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, g := range res.Groups {
		total += g.Estimate.Value
	}
	uq := q
	uq.GroupBy = nil
	all, err := eng.Execute(uq)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-all.Groups[0].Estimate.Value)/all.Groups[0].Estimate.Value > 0.05 {
		t.Fatalf("group estimates sum to %v, ungrouped total %v", total, all.Groups[0].Estimate.Value)
	}
}

func TestVarianceShrinksWithConstantScale(t *testing.T) {
	a := Estimate{Value: 100, Variance: 25}
	down := scaleEstimate(a, 0.1)
	if down.Variance != 0.25 {
		t.Fatalf("scaled variance = %v, want 0.25", down.Variance)
	}
}

func TestCIWidthGrowsWithSelectivity(t *testing.T) {
	eng, _ := buildChainEngine(t, 0)
	// A rarer predicate has fewer effective samples, so the *relative* CI
	// width should not shrink.
	broad := query.Query{Aggregate: query.Count, Tables: []string{"customer"},
		Filters: []query.Predicate{{Column: "c_age", Op: query.Ge, Value: 25}}}
	narrow := query.Query{Aggregate: query.Count, Tables: []string{"customer"},
		Filters: []query.Predicate{{Column: "c_age", Op: query.Ge, Value: 75}}}
	rb, err := eng.Execute(broad)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := eng.Execute(narrow)
	if err != nil {
		t.Fatal(err)
	}
	relWidth := func(g AQPGroup) float64 {
		if g.Estimate.Value == 0 {
			return 0
		}
		return (g.CIHigh - g.CILow) / g.Estimate.Value
	}
	if relWidth(rn.Groups[0]) < relWidth(rb.Groups[0]) {
		t.Fatalf("relative CI of narrow query (%v) should be wider than broad (%v)",
			relWidth(rn.Groups[0]), relWidth(rb.Groups[0]))
	}
}

func TestConcurrentQueries(t *testing.T) {
	// The engine's query path is read-only and must be safe for parallel
	// use (run with -race to verify).
	eng, _ := buildChainEngine(t, 0)
	rng := rand.New(rand.NewSource(123))
	queries := make([]query.Query, 16)
	for i := range queries {
		queries[i] = randomChainQuery(rng)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 20; i++ {
				if _, err := eng.EstimateCardinality(queries[(w+i)%len(queries)]); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
