package core

// batch_test.go asserts the batched executor's cross-query batching is
// transparent: ExecuteBatch over many bound queries must produce results
// bit-identical to executing each query alone (which itself batches only
// within the query), across aggregates, GROUP BY and disjunctions, and
// under parallelism.

import (
	"context"
	"math"
	"testing"

	"repro/internal/query"
)

func assertBatchEqualsSequential(t *testing.T, e *Engine, template query.Query, bindings [][]float64) {
	t.Helper()
	ctx := context.Background()
	p, err := e.Compile(template)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]query.Query, len(bindings))
	for i, vals := range bindings {
		q, err := template.Bind(vals...)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
	}
	batched, err := p.ExecuteBatch(ctx, ExecOpts{}, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(batched), len(queries))
	}
	for i, q := range queries {
		solo, err := p.ExecuteQuery(ctx, ExecOpts{}, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(batched[i].Groups) != len(solo.Groups) {
			t.Fatalf("query %d: %d groups batched vs %d solo", i, len(batched[i].Groups), len(solo.Groups))
		}
		for g := range solo.Groups {
			bg, sg := batched[i].Groups[g], solo.Groups[g]
			if math.Float64bits(bg.Estimate.Value) != math.Float64bits(sg.Estimate.Value) ||
				math.Float64bits(bg.Estimate.Variance) != math.Float64bits(sg.Estimate.Variance) {
				t.Fatalf("query %d group %d: batched %+v != solo %+v", i, g, bg.Estimate, sg.Estimate)
			}
		}
	}
}

func TestExecuteBatchMatchesSequential(t *testing.T) {
	for _, par := range []int{1, 4} {
		e, _, tabs := exactEnsemble(t, true)
		e.Parallelism = par
		bindings := [][]float64{{25}, {40}, {55}, {70}, {85}}
		cases := []struct {
			name     string
			template query.Query
		}{
			{"count", query.Query{
				Aggregate: query.Count,
				Tables:    []string{"customer", "orders"},
				Filters:   []query.Predicate{{Column: "c_age", Op: query.Lt, Param: 1}},
			}},
			{"avg", query.Query{
				Aggregate: query.Avg, AggColumn: "c_age",
				Tables:  []string{"customer", "orders"},
				Filters: []query.Predicate{{Column: "c_age", Op: query.Le, Param: 1}},
			}},
			{"grouped-count", query.Query{
				Aggregate: query.Count,
				Tables:    []string{"customer", "orders"},
				Filters:   []query.Predicate{{Column: "c_age", Op: query.Lt, Param: 1}},
				GroupBy:   []string{"o_channel"},
			}},
			{"grouped-avg", query.Query{
				Aggregate: query.Avg, AggColumn: "c_age",
				Tables:  []string{"customer", "orders"},
				Filters: []query.Predicate{{Column: "c_age", Op: query.Le, Param: 1}},
				GroupBy: []string{"o_channel"},
			}},
			{"disjunction", query.Query{
				Aggregate: query.Count,
				Tables:    []string{"customer", "orders"},
				Disjunction: []query.Predicate{
					{Column: "c_age", Op: query.Lt, Param: 1},
					{Column: "o_channel", Op: query.Eq, Value: onlineCode(tabs)},
				},
			}},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				assertBatchEqualsSequential(t, e, tc.template, bindings)
			})
		}
	}
}

// TestExecuteBatchEmpty: a zero-length batch is a no-op, not a panic.
func TestExecuteBatchEmpty(t *testing.T) {
	e, _, _ := exactEnsemble(t, false)
	template := query.Query{
		Aggregate: query.Count,
		Tables:    []string{"customer"},
		Filters:   []query.Predicate{{Column: "c_age", Op: query.Lt, Param: 1}},
	}
	p, err := e.Compile(template)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ExecuteBatch(context.Background(), ExecOpts{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("expected nil results, got %v", res)
	}
}
