package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/query"
)

// collectIter drains a GroupIter into a slice.
func collectIter(t *testing.T, it *GroupIter) []AQPGroup {
	t.Helper()
	var out []AQPGroup
	for it.Next() {
		out = append(out, it.Group())
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	return out
}

// sameBits asserts two floats share a bit pattern.
func sameBits(t *testing.T, what string, a, b float64) {
	t.Helper()
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("%s differs: %v (%x) vs %v (%x)", what, a, math.Float64bits(a), b, math.Float64bits(b))
	}
}

// assertGroupsIdentical asserts two row sets are bitwise identical,
// keys included, in the same order.
func assertGroupsIdentical(t *testing.T, got, want []AQPGroup) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count differs: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i].Key) != len(want[i].Key) {
			t.Fatalf("row %d key length differs", i)
		}
		for k := range want[i].Key {
			sameBits(t, "key", got[i].Key[k], want[i].Key[k])
		}
		sameBits(t, "value", got[i].Estimate.Value, want[i].Estimate.Value)
		sameBits(t, "variance", got[i].Estimate.Variance, want[i].Estimate.Variance)
		sameBits(t, "ci low", got[i].CILow, want[i].CILow)
		sameBits(t, "ci high", got[i].CIHigh, want[i].CIHigh)
	}
}

// TestGroupIterMatchesMaterialized streams grouped queries at several
// chunk sizes (including chunk=1 and chunk far beyond the key count) and
// asserts the rows are bit-identical to the materializing path's, in the
// same order.
func TestGroupIterMatchesMaterialized(t *testing.T) {
	for _, joint := range []bool{false, true} {
		e, _, _ := exactEnsemble(t, joint)
		queries := []query.Query{
			{Aggregate: query.Count, Tables: []string{"customer"}, GroupBy: []string{"c_region"}},
			{Aggregate: query.Avg, AggColumn: "c_age", Tables: []string{"customer"}, GroupBy: []string{"c_region"}},
			{Aggregate: query.Sum, AggColumn: "c_age", Tables: []string{"customer"}, GroupBy: []string{"c_region"}},
			{Aggregate: query.Count, Tables: []string{"customer", "orders"},
				GroupBy: []string{"c_region", "o_channel"}},
			{Aggregate: query.Avg, AggColumn: "c_age", Tables: []string{"customer", "orders"},
				GroupBy: []string{"o_channel"}},
			// Ungrouped: the iterator must yield the single row.
			{Aggregate: query.Count, Tables: []string{"customer"}},
		}
		for qi, q := range queries {
			p, err := e.Compile(q)
			if err != nil {
				t.Fatalf("joint=%v query %d: compile: %v", joint, qi, err)
			}
			want, err := p.ExecuteQuery(context.Background(), ExecOpts{}, q)
			if err != nil {
				t.Fatalf("joint=%v query %d: execute: %v", joint, qi, err)
			}
			for _, chunk := range []int{0, 1, 2, 3, 1 << 20} {
				it, err := p.ExecuteGroupsIter(context.Background(), ExecOpts{}, q, chunk)
				if err != nil {
					t.Fatalf("joint=%v query %d chunk %d: iter: %v", joint, qi, chunk, err)
				}
				got := collectIter(t, it)
				if len(want.Groups) != len(got) {
					t.Fatalf("joint=%v query %d chunk %d: got %d rows, want %d",
						joint, qi, chunk, len(got), len(want.Groups))
				}
				assertGroupsIdentical(t, got, want.Groups)
			}
		}
	}
}

// TestGroupIterConfidenceLevel asserts the iterator honors the execution
// confidence level the same way the materializing path does.
func TestGroupIterConfidenceLevel(t *testing.T) {
	e, _, _ := exactEnsemble(t, true)
	q := query.Query{Aggregate: query.Avg, AggColumn: "c_age",
		Tables: []string{"customer"}, GroupBy: []string{"c_region"}}
	p, err := e.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	opts := ExecOpts{ConfidenceLevel: 0.8}
	want, err := p.ExecuteQuery(context.Background(), opts, q)
	if err != nil {
		t.Fatal(err)
	}
	it, err := p.ExecuteGroupsIter(context.Background(), opts, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertGroupsIdentical(t, collectIter(t, it), want.Groups)
}

// TestGroupIterCancel asserts a canceled context surfaces through Err.
func TestGroupIterCancel(t *testing.T) {
	e, _, _ := exactEnsemble(t, true)
	q := query.Query{Aggregate: query.Count, Tables: []string{"customer"}, GroupBy: []string{"c_region"}}
	p, err := e.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	it, err := p.ExecuteGroupsIter(ctx, ExecOpts{}, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	for it.Next() {
	}
	if it.Err() == nil {
		t.Fatal("expected context error from canceled iterator")
	}
}
