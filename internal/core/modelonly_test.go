package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/query"
)

// TestModelOnlyTheorem2MatchesAttached: with single-table RSPNs only, a
// join query needs Theorem 2 — which used to dereference live tables for
// filter routing and branch denominators. Detaching the tables must not
// change the estimate, and the filters must demonstrably stay applied.
func TestModelOnlyTheorem2MatchesAttached(t *testing.T) {
	e, _, tabs := exactEnsemble(t, false)
	q := query.Query{
		Aggregate: query.Count,
		Tables:    []string{"customer", "orders"},
		Filters: []query.Predicate{
			{Column: "c_region", Op: query.Eq, Value: euCode(tabs)},
			{Column: "o_channel", Op: query.Eq, Value: onlineCode(tabs)},
		},
	}
	attached, err := e.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	unfiltered, err := e.EstimateCardinality(query.Query{Aggregate: query.Count, Tables: q.Tables})
	if err != nil {
		t.Fatal(err)
	}
	if attached.Value == unfiltered.Value {
		t.Fatalf("filters had no effect while attached (both %v)", attached.Value)
	}
	// Detach the base tables: the persisted statistics captured by
	// NewManual must carry column ownership and branch denominators.
	e.Ens.Tables = nil
	modelOnly, err := e.EstimateCardinality(q)
	if err != nil {
		t.Fatalf("model-only Theorem-2 query: %v", err)
	}
	if modelOnly != attached {
		t.Fatalf("model-only estimate %+v != attached %+v", modelOnly, attached)
	}
	// Outer-join classification must survive detachment too: a filter on
	// the outer table reverts it to inner semantics, so the two differ.
	oq := q
	oq.OuterTables = []string{"orders"}
	oq.Filters = q.Filters[:1]
	withOuter, err := e.EstimateCardinality(oq)
	if err != nil {
		t.Fatal(err)
	}
	iq := oq
	iq.OuterTables = nil
	inner, err := e.EstimateCardinality(iq)
	if err != nil {
		t.Fatal(err)
	}
	if withOuter.Value < inner.Value {
		t.Fatalf("outer join estimate %v < inner %v", withOuter.Value, inner.Value)
	}
}

// TestTheorem2ZeroDenominator: an empty bridgehead table zeroes the branch
// ratio without aborting branch evaluation; the estimate is 0 with no
// error.
func TestTheorem2ZeroDenominator(t *testing.T) {
	e, _, tabs := exactEnsemble(t, false)
	st := e.Ens.Stats["orders"]
	st.Rows = 0
	e.Ens.Stats["orders"] = st
	// The filter sits on customer, so the customer RSPN answers the left
	// side and orders is the bridgehead of the remaining branch.
	est, err := e.EstimateCardinality(query.Query{
		Aggregate: query.Count,
		Tables:    []string{"customer", "orders"},
		Filters:   []query.Predicate{{Column: "c_region", Op: query.Eq, Value: euCode(tabs)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 0 {
		t.Fatalf("estimate with empty bridgehead = %v, want 0", est.Value)
	}
}

// TestMedianCountEvenAverages: with an even number of covering RSPNs the
// median strategy must average the two middle estimates instead of taking
// the upper one.
func TestMedianCountEvenAverages(t *testing.T) {
	e, _, _ := exactEnsemble(t, false)
	// Duplicate the customer RSPN with a doubled FullSize: estimates v and
	// 2v, so the even-count median is 1.5v.
	var base *Estimate
	q := query.Query{Aggregate: query.Count, Tables: []string{"customer"}}
	got, err := e.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	base = &got
	for _, r := range e.Ens.RSPNs {
		if r.HasTable("customer") {
			clone := *r
			clone.FullSize = 2 * r.FullSize
			e.Ens.RSPNs = append(e.Ens.RSPNs, &clone)
			break
		}
	}
	e.Strategy = StrategyMedian
	med, err := e.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.5 * base.Value; math.Abs(med.Value-want) > 1e-9 {
		t.Fatalf("even-count median = %v, want %v", med.Value, want)
	}
}

// TestMedianCountCancellation: the compiled median node checks the
// caller's context between covering-RSPN evaluations.
func TestMedianCountCancellation(t *testing.T) {
	e, _, _ := exactEnsemble(t, false)
	// Duplicate the customer RSPN so the median path (>= 2 covering
	// members) actually compiles.
	for _, r := range e.Ens.RSPNs {
		if r.HasTable("customer") {
			clone := *r
			e.Ens.RSPNs = append(e.Ens.RSPNs, &clone)
			break
		}
	}
	e.Strategy = StrategyMedian
	p, err := e.Compile(query.Query{Aggregate: query.Count, Tables: []string{"customer"}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.EstimateCardinality(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelQueryPathMatchesSequential: Theorem-2 branch fan-out and
// inclusion-exclusion fan-out must not change results, only concurrency.
func TestParallelQueryPathMatchesSequential(t *testing.T) {
	seqEng, _, tabs := exactEnsemble(t, false)
	queries := []query.Query{
		{ // Theorem 2 with filters on both sides.
			Aggregate: query.Count,
			Tables:    []string{"customer", "orders"},
			Filters: []query.Predicate{
				{Column: "c_region", Op: query.Eq, Value: euCode(tabs)},
				{Column: "o_channel", Op: query.Eq, Value: onlineCode(tabs)},
			},
		},
		{ // Disjunction: inclusion-exclusion over three terms.
			Aggregate: query.Count,
			Tables:    []string{"customer", "orders"},
			Disjunction: []query.Predicate{
				{Column: "c_age", Op: query.Lt, Value: 30},
				{Column: "c_age", Op: query.Gt, Value: 70},
				{Column: "o_channel", Op: query.Eq, Value: onlineCode(tabs)},
			},
		},
	}
	parEng, _, _ := exactEnsemble(t, false)
	parEng.Parallelism = 4
	for i, q := range queries {
		a, err := seqEng.EstimateCardinality(q)
		if err != nil {
			t.Fatalf("query %d sequential: %v", i, err)
		}
		b, err := parEng.EstimateCardinality(q)
		if err != nil {
			t.Fatalf("query %d parallel: %v", i, err)
		}
		if a != b {
			t.Fatalf("query %d: parallel %+v != sequential %+v", i, b, a)
		}
	}
}
