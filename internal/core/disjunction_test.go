package core

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/query"
)

func TestDisjunctionExactMatchesPaperData(t *testing.T) {
	s, tabs := figure5(t)
	oracle := exact.New(s, tabs)
	// region = EU OR age >= 80: customers 1, 2 (EU) plus 3 (age 80) = 3.
	q := query.Query{Aggregate: query.Count, Tables: []string{"customer"},
		Disjunction: []query.Predicate{
			{Column: "c_region", Op: query.Eq, Value: float64(tabs["customer"].Column("c_region").Lookup("EUROPE"))},
			{Column: "c_age", Op: query.Ge, Value: 80},
		}}
	res, err := oracle.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != 3 {
		t.Fatalf("exact OR count = %v, want 3", res.Scalar())
	}
}

func TestDisjunctionEngineInclusionExclusion(t *testing.T) {
	e, _, tabs := exactEnsemble(t, false)
	eu := euCode(tabs)
	q := query.Query{Aggregate: query.Count, Tables: []string{"customer"},
		Disjunction: []query.Predicate{
			{Column: "c_region", Op: query.Eq, Value: eu},
			{Column: "c_age", Op: query.Ge, Value: 80},
		}}
	est, err := e.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	// count(EU) + count(age>=80) - count(EU && age>=80) = 2 + 1 - 0 = 3.
	if math.Abs(est.Value-3) > 1e-9 {
		t.Fatalf("OR estimate = %v, want 3", est.Value)
	}
}

func TestDisjunctionOverlappingTerms(t *testing.T) {
	e, _, tabs := exactEnsemble(t, false)
	eu := euCode(tabs)
	// Overlapping disjuncts: EU (2 customers) OR age >= 50 (customers 2, 3).
	// Union = {1, 2, 3} = 3; naive addition would give 4.
	q := query.Query{Aggregate: query.Count, Tables: []string{"customer"},
		Disjunction: []query.Predicate{
			{Column: "c_region", Op: query.Eq, Value: eu},
			{Column: "c_age", Op: query.Ge, Value: 50},
		}}
	est, err := e.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-3) > 1e-9 {
		t.Fatalf("overlapping OR estimate = %v, want 3 (inclusion-exclusion)", est.Value)
	}
}

func TestDisjunctionWithConjunctsAndJoin(t *testing.T) {
	e, _, tabs := exactEnsemble(t, true)
	online := onlineCode(tabs)
	store := float64(tabs["orders"].Column("o_channel").Lookup("STORE"))
	// All four orders have channel ONLINE or STORE: count = 4.
	q := query.Query{Aggregate: query.Count, Tables: []string{"customer", "orders"},
		Disjunction: []query.Predicate{
			{Column: "o_channel", Op: query.Eq, Value: online},
			{Column: "o_channel", Op: query.Eq, Value: store},
		}}
	est, err := e.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-4) > 1e-9 {
		t.Fatalf("join OR estimate = %v, want 4", est.Value)
	}
	// Conjunct + disjunction: EU AND (ONLINE OR STORE) = customer 1's two
	// orders = 2.
	q.Filters = []query.Predicate{{Column: "c_region", Op: query.Eq, Value: euCode(tabs)}}
	est, err = e.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-2) > 1e-9 {
		t.Fatalf("conjunct+OR estimate = %v, want 2", est.Value)
	}
}

func TestDisjunctionAvgAndSum(t *testing.T) {
	e, _, tabs := exactEnsemble(t, false)
	eu := euCode(tabs)
	// AVG(age) over EU OR age>=80 = (20+50+80)/3 = 50.
	q := query.Query{Aggregate: query.Avg, AggColumn: "c_age", Tables: []string{"customer"},
		Disjunction: []query.Predicate{
			{Column: "c_region", Op: query.Eq, Value: eu},
			{Column: "c_age", Op: query.Ge, Value: 80},
		}}
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Groups[0].Estimate.Value; math.Abs(got-50) > 1e-9 {
		t.Fatalf("OR AVG = %v, want 50", got)
	}
	q.Aggregate = query.Sum
	res, err = e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Groups[0].Estimate.Value; math.Abs(got-150) > 1e-9 {
		t.Fatalf("OR SUM = %v, want 150", got)
	}
}

func TestDisjunctionAgainstOracleOnChain(t *testing.T) {
	eng, oracle := buildChainEngine(t, 0)
	q := query.Query{Aggregate: query.Count, Tables: []string{"customer", "orders"},
		Filters: []query.Predicate{{Column: "c_age", Op: query.Lt, Value: 60}},
		Disjunction: []query.Predicate{
			{Column: "o_channel", Op: query.Eq, Value: 0},
			{Column: "o_channel", Op: query.Eq, Value: 2},
		}}
	truth, err := oracle.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	est, err := eng.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if qe := query.QError(est.Value, truth); qe > 2 {
		t.Fatalf("OR q-error %.2f (est %.1f true %.1f)", qe, est.Value, truth)
	}
}

func TestParseOrGroup(t *testing.T) {
	q, err := query.Parse("SELECT COUNT(*) FROM t WHERE a >= 5 AND (b = 1 OR b = 2 OR c > 9)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 1 || len(q.Disjunction) != 3 {
		t.Fatalf("parsed filters=%d disjuncts=%d", len(q.Filters), len(q.Disjunction))
	}
	if _, err := query.Parse("SELECT COUNT(*) FROM t WHERE (a=1 OR a=2) AND (b=1 OR b=2)", nil); err == nil {
		t.Fatal("two OR-groups should be rejected")
	}
}

func TestDisjunctionValidation(t *testing.T) {
	var many []query.Predicate
	for i := 0; i < 9; i++ {
		many = append(many, query.Predicate{Column: "a", Op: query.Eq, Value: float64(i)})
	}
	q := query.Query{Aggregate: query.Count, Tables: []string{"t"}, Disjunction: many}
	if err := q.Validate(); err == nil {
		t.Fatal("expected error for oversized disjunction")
	}
}
