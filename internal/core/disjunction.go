package core

import (
	"context"
	"fmt"

	"repro/internal/parallel"
	"repro/internal/query"
)

// Disjunction support (the inclusion-exclusion extension Section 4.1
// mentions): a query with an OR-group (d1 OR ... OR dk) ANDed to its
// conjunctive filters is compiled as
//
//	count(C ∧ ⋁ d_i) = Σ_{∅≠S⊆[k]} (-1)^{|S|+1} count(C ∧ ⋀_{i∈S} d_i)
//
// where each signed term is an ordinary conjunctive query the engine
// already handles (conjuncts on the same column intersect their ranges).
// SUM distributes the same way; AVG is SUM/COUNT.

// expandInclusionExclusion returns the signed conjunctive sub-queries of a
// disjunctive query.
type signedQuery struct {
	q    query.Query
	sign float64
}

func expandInclusionExclusion(q query.Query) ([]signedQuery, error) {
	k := len(q.Disjunction)
	if k == 0 {
		return []signedQuery{{q: q, sign: 1}}, nil
	}
	if k > 8 {
		return nil, fmt.Errorf("core: disjunction with %d terms (max 8)", k)
	}
	var out []signedQuery
	for mask := 1; mask < 1<<k; mask++ {
		sub := q
		sub.Disjunction = nil
		sub.Filters = append([]query.Predicate(nil), q.Filters...)
		bits := 0
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				sub.Filters = append(sub.Filters, q.Disjunction[i])
				bits++
			}
		}
		sign := 1.0
		if bits%2 == 0 {
			sign = -1
		}
		out = append(out, signedQuery{q: sub, sign: sign})
	}
	return out, nil
}

// signedSum estimates every signed term with the given estimator — fanned
// over up to Engine.Parallelism workers (the terms are independent
// conjunctive queries) — and combines them in deterministic order.
// Variances add (the terms are not independent, so this is the
// conservative bound).
func (e *Engine) signedSum(ctx context.Context, terms []signedQuery, estimate func(query.Query) (Estimate, error)) (Estimate, error) {
	ests := make([]Estimate, len(terms))
	err := parallel.ForEach(len(terms), e.Parallelism, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		est, err := estimate(terms[i].q)
		if err != nil {
			return err
		}
		ests[i] = est
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	var total Estimate
	for i, t := range terms {
		total.Value += t.sign * ests[i].Value
		total.Variance += ests[i].Variance
	}
	return total, nil
}

// estimateDisjunctiveCount applies inclusion-exclusion to COUNT.
func (e *Engine) estimateDisjunctiveCount(ctx context.Context, q query.Query) (Estimate, error) {
	terms, err := expandInclusionExclusion(q)
	if err != nil {
		return Estimate{}, err
	}
	total, err := e.signedSum(ctx, terms, func(sub query.Query) (Estimate, error) {
		return e.estimateCount(ctx, sub.Tables, sub.Filters, e.effectiveOuter(sub))
	})
	if err != nil {
		return Estimate{}, err
	}
	if total.Value < 0 {
		total.Value = 0
	}
	return total, nil
}

// estimateDisjunctiveAggregate handles SUM (distributes over the signed
// terms) and AVG (SUM divided by COUNT).
func (e *Engine) estimateDisjunctiveAggregate(ctx context.Context, q query.Query) (Estimate, error) {
	switch q.Aggregate {
	case query.Count:
		return e.estimateDisjunctiveCount(ctx, q)
	case query.Sum:
		terms, err := expandInclusionExclusion(q)
		if err != nil {
			return Estimate{}, err
		}
		return e.signedSum(ctx, terms, func(sub query.Query) (Estimate, error) {
			return e.estimateSum(ctx, sub)
		})
	case query.Avg:
		sq := q
		sq.Aggregate = query.Sum
		sum, err := e.estimateDisjunctiveAggregate(ctx, sq)
		if err != nil {
			return Estimate{}, err
		}
		cnt, err := e.estimateDisjunctiveCount(ctx, q)
		if err != nil {
			return Estimate{}, err
		}
		return divEstimate(sum, cnt), nil
	default:
		return Estimate{}, fmt.Errorf("core: unsupported aggregate %v", q.Aggregate)
	}
}
