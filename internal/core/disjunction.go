package core

import (
	"fmt"

	"repro/internal/query"
)

// Disjunction support (the inclusion-exclusion extension Section 4.1
// mentions): a query with an OR-group (d1 OR ... OR dk) ANDed to its
// conjunctive filters is compiled as
//
//	count(C ∧ ⋁ d_i) = Σ_{∅≠S⊆[k]} (-1)^{|S|+1} count(C ∧ ⋀_{i∈S} d_i)
//
// where each signed term is an ordinary conjunctive query the engine
// already handles (conjuncts on the same column intersect their ranges).
// SUM distributes the same way; AVG is SUM/COUNT. The expansion happens at
// compile time (plan.go): each signed term gets its own compiled
// conjunctive sub-plan, and execution re-binds only the predicate values.

// signedQuery is one signed conjunctive sub-query of a disjunctive query:
// the disjunct subset selected by mask, ANDed to the base filters.
type signedQuery struct {
	q    query.Query
	sign float64
	mask int
}

// expandInclusionExclusion returns the signed conjunctive sub-queries of a
// disjunctive query. A query without a disjunction yields its single
// positive term with mask 0.
func expandInclusionExclusion(q query.Query) ([]signedQuery, error) {
	k := len(q.Disjunction)
	if k == 0 {
		return []signedQuery{{q: q, sign: 1}}, nil
	}
	if k > 8 {
		return nil, fmt.Errorf("core: disjunction with %d terms (max 8)", k)
	}
	var out []signedQuery
	for mask := 1; mask < 1<<k; mask++ {
		sub := q
		sub.Disjunction = nil
		sub.Filters = append([]query.Predicate(nil), q.Filters...)
		bits := 0
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				sub.Filters = append(sub.Filters, q.Disjunction[i])
				bits++
			}
		}
		sign := 1.0
		if bits%2 == 0 {
			sign = -1
		}
		out = append(out, signedQuery{q: sub, sign: sign, mask: mask})
	}
	return out, nil
}
