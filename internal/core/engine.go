// Package core is DeepDB's probabilistic query compilation engine
// (Section 4 of the paper). It translates COUNT, SUM and AVG queries with
// conjunctive predicates, FK equi-joins and GROUP BY into products of
// expectations and probabilities evaluated on an ensemble of RSPNs:
//
//   - Case 1: an RSPN exactly matches the query's tables — Theorem 1 with
//     an empty factor set.
//   - Case 2: an RSPN covers a superset of the tables — Theorem 1 with
//     1/F' tuple-factor normalization.
//   - Case 3: no single RSPN covers the query — Theorem 2 combines several
//     RSPNs across bridge FK edges, assuming conditional independence.
//
// The engine also derives variances for every estimate (Section 5.1) and
// turns them into confidence intervals.
//
// Queries run through an explicit compile/execute split: Compile resolves
// validation, RSPN selection and the full Section-4 decomposition into a
// Plan once per query shape, and executing the Plan is a pure walk over
// the prebuilt structure (see plan.go). The one-shot EstimateCardinality
// and Execute entry points below compile and execute in one call, so a
// cached plan and a one-shot query produce bit-identical estimates.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/ensemble"
	"repro/internal/query"
	"repro/internal/rspn"
	"repro/internal/spn"
	"repro/internal/stats"
)

// Strategy selects how the engine picks RSPNs for a query.
type Strategy int

const (
	// StrategyRDCGreedy picks the RSPN handling the filter predicates with
	// the highest sum of pairwise RDC values (the paper's choice).
	StrategyRDCGreedy Strategy = iota
	// StrategyMedian enumerates all covering RSPNs and uses the median of
	// their predictions (the alternative the paper evaluated and
	// rejected); it falls back to greedy when fewer than two RSPNs cover
	// the query.
	StrategyMedian
)

// BatchEvaluator is an optional dispatch hook for the batched executor:
// when set on an Engine, every chunk of SPN inference requests goes
// through it instead of straight to the RSPN's in-process model. The
// sharded serving tier uses this to offload evaluation to shard replica
// processes. Implementations must fill out[i] with the answer to reqs[i]
// and must be bit-identical to r.EvaluateRequests — the usual way to
// guarantee that is to proxy to a replica holding the same model and fall
// back to the local model on any failure. Calls may arrive concurrently
// (one per evaluation chunk, up to Engine.Parallelism at a time).
type BatchEvaluator interface {
	EvaluateRSPN(ctx context.Context, r *rspn.RSPN, reqs []spn.Request, out []float64) error
}

// Engine evaluates queries against an RSPN ensemble. The query path is
// read-only, so one Engine may serve concurrent queries from multiple
// goroutines — as long as no ensemble update runs at the same time (the
// deepdb facade enforces that with a RWMutex).
type Engine struct {
	Ens      *ensemble.Ensemble
	Strategy Strategy
	// ConfidenceLevel for intervals, default 0.95. Overridable per
	// execution with ExecOpts.
	ConfidenceLevel float64
	// Parallelism bounds the worker count of each fan-out of a query's
	// independent sub-estimates: GROUP BY per-group estimates, Theorem-2
	// branch sub-estimates, and disjunction inclusion-exclusion terms.
	// The bound is per fan-out, not global — nested fan-outs (a group
	// whose estimate needs Theorem 2, a branch that recurses) each get
	// their own workers. Values <= 1 run sequentially.
	Parallelism int
	// Eval, when non-nil, routes every evaluation chunk through the hook
	// instead of the in-process model. nil keeps the direct path.
	Eval BatchEvaluator
}

// New returns an engine with the paper's defaults.
func New(ens *ensemble.Ensemble) *Engine {
	return &Engine{Ens: ens, Strategy: StrategyRDCGreedy, ConfidenceLevel: 0.95}
}

// Estimate is a point estimate with its variance (Section 5.1).
type Estimate struct {
	Value    float64
	Variance float64
}

// ConfidenceInterval returns the two-sided interval at the given level
// under the normality assumption of Section 5.1.
func (e Estimate) ConfidenceInterval(level float64) (lo, hi float64) {
	z := stats.ConfidenceZ(level)
	sd := math.Sqrt(math.Max(0, e.Variance))
	return e.Value - z*sd, e.Value + z*sd
}

// mulEstimate multiplies two independent estimates, propagating variance
// with V(XY) = V(X)V(Y) + V(X)E(Y)^2 + V(Y)E(X)^2.
func mulEstimate(a, b Estimate) Estimate {
	return Estimate{
		Value:    a.Value * b.Value,
		Variance: stats.ProductVariance(a.Value, a.Variance, b.Value, b.Variance),
	}
}

// divEstimate divides estimate a by an independent estimate b via the delta
// method.
func divEstimate(a, b Estimate) Estimate {
	if b.Value == 0 {
		return Estimate{}
	}
	v := a.Value / b.Value
	rel := 0.0
	if a.Value != 0 {
		rel += a.Variance / (a.Value * a.Value)
	}
	rel += b.Variance / (b.Value * b.Value)
	return Estimate{Value: v, Variance: v * v * rel}
}

// scaleEstimate multiplies an estimate by an exact constant.
func scaleEstimate(a Estimate, c float64) Estimate {
	return Estimate{Value: a.Value * c, Variance: a.Variance * c * c}
}

// EstimateCardinality estimates COUNT(*) over the query's join with its
// filters — the cardinality-estimation task of Section 6.1. Group-by and
// aggregate settings on q are ignored.
func (e *Engine) EstimateCardinality(q query.Query) (Estimate, error) {
	return e.EstimateCardinalityContext(context.Background(), q)
}

// EstimateCardinalityContext is EstimateCardinality with cancellation: the
// execution walk checks ctx before every sub-estimate. It compiles a plan
// and executes it once; hold on to Compile's plan to amortize that per
// query shape.
func (e *Engine) EstimateCardinalityContext(ctx context.Context, q query.Query) (Estimate, error) {
	p, err := e.Compile(q)
	if err != nil {
		return Estimate{}, err
	}
	return p.EstimateCardinalityQuery(ctx, q)
}

// validateQuery runs the schema-independent checks plus table resolution,
// so a typo'd table name fails with its name instead of a coverage error.
func (e *Engine) validateQuery(q query.Query) error {
	if err := q.Validate(); err != nil {
		return err
	}
	for _, t := range q.Tables {
		if e.Ens.Schema.Table(t) == nil {
			return fmt.Errorf("core: unknown table %s", t)
		}
	}
	_, err := e.Ens.Schema.JoinTree(q.Tables)
	return err
}

// effectiveOuter returns the outer tables that still behave as outer after
// SQL WHERE semantics: a predicate on an outer table's column eliminates
// its padded rows, so the table reverts to inner-join behaviour.
func (e *Engine) effectiveOuter(q query.Query) []string {
	var out []string
	for _, ot := range q.OuterTables {
		filtered := false
		for _, f := range q.Filters {
			if e.columnOwner(f.Column, []string{ot}) != "" {
				filtered = true
				break
			}
		}
		if !filtered {
			out = append(out, ot)
		}
	}
	return out
}

// pickCovering implements the greedy execution strategy of Section 4.1:
// choose the RSPN that handles the filter predicates with the highest sum
// of pairwise RDC values; ties prefer smaller models.
func (e *Engine) pickCovering(covering []*rspn.RSPN, filters []query.Predicate) *rspn.RSPN {
	best := covering[0]
	bestScore := math.Inf(-1)
	for _, r := range covering {
		score := e.filterScore(r, filters)
		// Smaller models dilute single-table marginals less; subtract a
		// tiny penalty per extra table as the tie-breaker.
		score -= 1e-6 * float64(len(r.Tables))
		if score > bestScore {
			best, bestScore = r, score
		}
	}
	return best
}

// filterScore sums the pairwise attribute RDC values over the filter
// columns the RSPN can resolve.
func (e *Engine) filterScore(r *rspn.RSPN, filters []query.Predicate) float64 {
	var cols []string
	for _, f := range filters {
		if r.ResolvesColumn(f.Column) {
			cols = append(cols, f.Column)
		}
	}
	score := 0.001 * float64(len(cols)) // resolving more filters is better
	for i := 0; i < len(cols); i++ {
		for j := i + 1; j < len(cols); j++ {
			score += e.Ens.AttrRDC[ensemble.AttrKey(cols[i], cols[j])]
		}
	}
	return score
}

// momentVariance derives the estimator variance of one expectation from
// its already-evaluated parts, following Section 5.1: the expectation is
// split into P(C) * E(G | C); the probability part is binomial over the
// model's n training rows, the conditional part uses Koenig-Huygens with
// the squared term, and the two combine with the product-variance formula.
// full is E[term], p is the probability-only expectation (the term with
// its moment functions stripped), sq the squared-function expectation
// (ignored when hasFns is false). The batched executor (plan_exec.go)
// fetches the parts from one evaluation pass and calls this.
func momentVariance(n, p, full, sq float64, hasFns bool) float64 {
	if n <= 1 {
		return 0
	}
	varP := stats.BinomialVariance(p, int(n))
	if !hasFns {
		return varP
	}
	if p <= 0 {
		return 0
	}
	condMean := full / p
	condVar := sq/p - condMean*condMean
	if condVar < 0 {
		condVar = 0
	}
	nC := n * p
	varCond := condVar / math.Max(1, nC)
	return stats.ProductVariance(p, varP, condMean, varCond)
}

// squareFn maps each moment function to its square.
func squareFn(fn spn.Fn) spn.Fn {
	switch fn {
	case spn.FnIdent:
		return spn.FnSquare
	case spn.FnInv:
		return spn.FnInvSquare
	case spn.FnOne:
		return spn.FnOne
	default:
		// Squares of squares are not needed by any compilation.
		return fn
	}
}

// branchAllOuter reports whether every table of the branch is outer-joined.
func branchAllOuter(br branch, outer map[string]bool) bool {
	for _, t := range br.tables {
		if !outer[t] {
			return false
		}
	}
	return len(br.tables) > 0
}

// branch is one connected component of the query tables left uncovered,
// attached to the covered set through a bridge FK edge.
type branch struct {
	tables []string
	// head is the branch table adjacent to the covered set.
	head string
	// headIsMany reports whether head is the Many side of the bridge edge
	// (then the covered side's tuple factor F_{s<-head} extends the count;
	// otherwise the FK points from the covered side to head and each
	// covered row has at most one partner).
	headIsMany bool
	// bridgeOne/bridgeMany name the edge for factor-column lookup.
	bridgeOne, bridgeMany string
}

func tableTupleFactor(br branch) string {
	return "__fk_" + br.bridgeOne + "<-" + br.bridgeMany
}

// branchComponents splits the uncovered tables into connected components
// and finds each component's bridge to the covered set.
func (e *Engine) branchComponents(rest, covered []string) ([]branch, error) {
	if len(rest) == 0 {
		return nil, nil
	}
	inRest := toSet(rest)
	inCovered := toSet(covered)
	seen := map[string]bool{}
	var out []branch
	for _, start := range rest {
		if seen[start] {
			continue
		}
		// BFS within rest.
		comp := []string{start}
		seen[start] = true
		for i := 0; i < len(comp); i++ {
			for _, edge := range e.Ens.Schema.NeighborEdges(comp[i]) {
				var nb string
				if edge.Many == comp[i] {
					nb = edge.One
				} else {
					nb = edge.Many
				}
				if inRest[nb] && !seen[nb] {
					seen[nb] = true
					comp = append(comp, nb)
				}
			}
		}
		// Find the bridge edge to the covered set.
		var br *branch
		for _, t := range comp {
			for _, edge := range e.Ens.Schema.NeighborEdges(t) {
				var other string
				headIsMany := false
				if edge.Many == t {
					other = edge.One
					headIsMany = true
				} else {
					other = edge.Many
				}
				if inCovered[other] {
					br = &branch{tables: comp, head: t, headIsMany: headIsMany,
						bridgeOne: edge.One, bridgeMany: edge.Many}
					break
				}
			}
			if br != nil {
				break
			}
		}
		if br == nil {
			return nil, fmt.Errorf("core: tables %v not FK-adjacent to covered set %v", comp, covered)
		}
		out = append(out, *br)
	}
	return out, nil
}

// pickPartial chooses the RSPN for Theorem 2's left side: highest filter
// score, with coverage count as the dominant term so the recursion shrinks.
func (e *Engine) pickPartial(tables []string, filters []query.Predicate) *rspn.RSPN {
	var best *rspn.RSPN
	bestScore := math.Inf(-1)
	for _, r := range e.Ens.RSPNs {
		cov := len(e.connectedCovered(tables, r))
		if cov == 0 {
			continue
		}
		score := float64(cov) + e.filterScore(r, filters)
		if score > bestScore {
			best, bestScore = r, score
		}
	}
	return best
}

// connectedCovered returns the largest connected (in the FK graph) subset
// of the query tables that the RSPN covers.
func (e *Engine) connectedCovered(tables []string, r *rspn.RSPN) []string {
	covered := map[string]bool{}
	for _, t := range tables {
		if r.HasTable(t) {
			covered[t] = true
		}
	}
	if len(covered) == 0 {
		return nil
	}
	var bestComp []string
	seen := map[string]bool{}
	// Seed components from the caller's table order, not map order: on a
	// size tie between components, the first seeded wins.
	for _, t := range tables {
		if !covered[t] || seen[t] {
			continue
		}
		comp := []string{t}
		seen[t] = true
		for i := 0; i < len(comp); i++ {
			for _, edge := range e.Ens.Schema.NeighborEdges(comp[i]) {
				var nb string
				if edge.Many == comp[i] {
					nb = edge.One
				} else {
					nb = edge.Many
				}
				if covered[nb] && !seen[nb] {
					seen[nb] = true
					comp = append(comp, nb)
				}
			}
		}
		if len(comp) > len(bestComp) {
			bestComp = comp
		}
	}
	sort.Strings(bestComp)
	return bestComp
}

// columnOwner returns which of the tables owns the column ("" if none).
// Ownership resolves through the ensemble's persisted statistics (falling
// back to live tables, then schema metadata), so model-only serving
// classifies filters exactly like the data-attached path.
func (e *Engine) columnOwner(col string, tables []string) string {
	for _, tn := range tables {
		if e.Ens.TableHasColumn(tn, col) {
			return tn
		}
	}
	return ""
}

func intersect(a, b []string) []string {
	set := toSet(b)
	var out []string
	for _, x := range a {
		if set[x] {
			out = append(out, x)
		}
	}
	return out
}

func subtract(a, b []string) []string {
	set := toSet(b)
	var out []string
	for _, x := range a {
		if !set[x] {
			out = append(out, x)
		}
	}
	return out
}

func toSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}
