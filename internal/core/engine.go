// Package core is DeepDB's probabilistic query compilation engine
// (Section 4 of the paper). It translates COUNT, SUM and AVG queries with
// conjunctive predicates, FK equi-joins and GROUP BY into products of
// expectations and probabilities evaluated on an ensemble of RSPNs:
//
//   - Case 1: an RSPN exactly matches the query's tables — Theorem 1 with
//     an empty factor set.
//   - Case 2: an RSPN covers a superset of the tables — Theorem 1 with
//     1/F' tuple-factor normalization.
//   - Case 3: no single RSPN covers the query — Theorem 2 combines several
//     RSPNs across bridge FK edges, assuming conditional independence.
//
// The engine also derives variances for every estimate (Section 5.1) and
// turns them into confidence intervals.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/ensemble"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/rspn"
	"repro/internal/spn"
	"repro/internal/stats"
)

// Strategy selects how the engine picks RSPNs for a query.
type Strategy int

const (
	// StrategyRDCGreedy picks the RSPN handling the filter predicates with
	// the highest sum of pairwise RDC values (the paper's choice).
	StrategyRDCGreedy Strategy = iota
	// StrategyMedian enumerates all covering RSPNs and uses the median of
	// their predictions (the alternative the paper evaluated and
	// rejected); it falls back to greedy when fewer than two RSPNs cover
	// the query.
	StrategyMedian
)

// Engine evaluates queries against an RSPN ensemble. The query path is
// read-only, so one Engine may serve concurrent queries from multiple
// goroutines — as long as no ensemble update runs at the same time (the
// deepdb facade enforces that with a RWMutex).
type Engine struct {
	Ens      *ensemble.Ensemble
	Strategy Strategy
	// ConfidenceLevel for intervals, default 0.95.
	ConfidenceLevel float64
	// Parallelism bounds the worker count of each fan-out of a query's
	// independent sub-estimates: GROUP BY per-group estimates, Theorem-2
	// branch sub-estimates, and disjunction inclusion-exclusion terms.
	// The bound is per fan-out, not global — nested fan-outs (a group
	// whose estimate needs Theorem 2, a branch that recurses) each get
	// their own workers. Values <= 1 run sequentially.
	Parallelism int
}

// New returns an engine with the paper's defaults.
func New(ens *ensemble.Ensemble) *Engine {
	return &Engine{Ens: ens, Strategy: StrategyRDCGreedy, ConfidenceLevel: 0.95}
}

// Estimate is a point estimate with its variance (Section 5.1).
type Estimate struct {
	Value    float64
	Variance float64
}

// ConfidenceInterval returns the two-sided interval at the given level
// under the normality assumption of Section 5.1.
func (e Estimate) ConfidenceInterval(level float64) (lo, hi float64) {
	z := stats.ConfidenceZ(level)
	sd := math.Sqrt(math.Max(0, e.Variance))
	return e.Value - z*sd, e.Value + z*sd
}

// mulEstimate multiplies two independent estimates, propagating variance
// with V(XY) = V(X)V(Y) + V(X)E(Y)^2 + V(Y)E(X)^2.
func mulEstimate(a, b Estimate) Estimate {
	return Estimate{
		Value:    a.Value * b.Value,
		Variance: stats.ProductVariance(a.Value, a.Variance, b.Value, b.Variance),
	}
}

// divEstimate divides estimate a by an independent estimate b via the delta
// method.
func divEstimate(a, b Estimate) Estimate {
	if b.Value == 0 {
		return Estimate{}
	}
	v := a.Value / b.Value
	rel := 0.0
	if a.Value != 0 {
		rel += a.Variance / (a.Value * a.Value)
	}
	rel += b.Variance / (b.Value * b.Value)
	return Estimate{Value: v, Variance: v * v * rel}
}

// scaleEstimate multiplies an estimate by an exact constant.
func scaleEstimate(a Estimate, c float64) Estimate {
	return Estimate{Value: a.Value * c, Variance: a.Variance * c * c}
}

// EstimateCardinality estimates COUNT(*) over the query's join with its
// filters — the cardinality-estimation task of Section 6.1. Group-by and
// aggregate settings on q are ignored.
func (e *Engine) EstimateCardinality(q query.Query) (Estimate, error) {
	return e.EstimateCardinalityContext(context.Background(), q)
}

// EstimateCardinalityContext is EstimateCardinality with cancellation: the
// Theorem-2 recursion over uncovered branches checks ctx before every
// sub-estimate.
func (e *Engine) EstimateCardinalityContext(ctx context.Context, q query.Query) (Estimate, error) {
	if err := e.validateQuery(q); err != nil {
		return Estimate{}, err
	}
	if len(q.Disjunction) > 0 {
		return e.estimateDisjunctiveCount(ctx, q)
	}
	return e.estimateCount(ctx, q.Tables, q.Filters, e.effectiveOuter(q))
}

// validateQuery runs the schema-independent checks plus table resolution,
// so a typo'd table name fails with its name instead of a coverage error.
func (e *Engine) validateQuery(q query.Query) error {
	if err := q.Validate(); err != nil {
		return err
	}
	for _, t := range q.Tables {
		if e.Ens.Schema.Table(t) == nil {
			return fmt.Errorf("core: unknown table %s", t)
		}
	}
	_, err := e.Ens.Schema.JoinTree(q.Tables)
	return err
}

// effectiveOuter returns the outer tables that still behave as outer after
// SQL WHERE semantics: a predicate on an outer table's column eliminates
// its padded rows, so the table reverts to inner-join behaviour.
func (e *Engine) effectiveOuter(q query.Query) []string {
	var out []string
	for _, ot := range q.OuterTables {
		filtered := false
		for _, f := range q.Filters {
			if e.columnOwner(f.Column, []string{ot}) != "" {
				filtered = true
				break
			}
		}
		if !filtered {
			out = append(out, ot)
		}
	}
	return out
}

// estimateCount dispatches between the single-RSPN cases and Theorem 2.
func (e *Engine) estimateCount(ctx context.Context, tables []string, filters []query.Predicate, outer []string) (Estimate, error) {
	if err := ctx.Err(); err != nil {
		return Estimate{}, err
	}
	covering := e.Ens.Covering(tables)
	if len(covering) > 0 {
		if e.Strategy == StrategyMedian && len(covering) > 1 {
			return e.medianCount(ctx, covering, tables, filters, outer)
		}
		r := e.pickCovering(covering, filters)
		return e.theorem1(r, tables, filters, outer, nil)
	}
	return e.theorem2(ctx, tables, filters, outer)
}

// medianCount evaluates every covering RSPN and returns the median: the
// middle estimate for an odd member count, the average of the two middle
// estimates for an even one (variance of the two-point mean, treating the
// members as independent).
func (e *Engine) medianCount(ctx context.Context, covering []*rspn.RSPN, tables []string, filters []query.Predicate, outer []string) (Estimate, error) {
	var ests []Estimate
	for _, r := range covering {
		if err := ctx.Err(); err != nil {
			return Estimate{}, err
		}
		est, err := e.theorem1(r, tables, filters, outer, nil)
		if err != nil {
			return Estimate{}, err
		}
		ests = append(ests, est)
	}
	sort.Slice(ests, func(i, j int) bool { return ests[i].Value < ests[j].Value })
	n := len(ests)
	if n%2 == 1 {
		return ests[n/2], nil
	}
	lo, hi := ests[n/2-1], ests[n/2]
	return Estimate{
		Value:    (lo.Value + hi.Value) / 2,
		Variance: (lo.Variance + hi.Variance) / 4,
	}, nil
}

// pickCovering implements the greedy execution strategy of Section 4.1:
// choose the RSPN that handles the filter predicates with the highest sum
// of pairwise RDC values; ties prefer smaller models.
func (e *Engine) pickCovering(covering []*rspn.RSPN, filters []query.Predicate) *rspn.RSPN {
	best := covering[0]
	bestScore := math.Inf(-1)
	for _, r := range covering {
		score := e.filterScore(r, filters)
		// Smaller models dilute single-table marginals less; subtract a
		// tiny penalty per extra table as the tie-breaker.
		score -= 1e-6 * float64(len(r.Tables))
		if score > bestScore {
			best, bestScore = r, score
		}
	}
	return best
}

// filterScore sums the pairwise attribute RDC values over the filter
// columns the RSPN can resolve.
func (e *Engine) filterScore(r *rspn.RSPN, filters []query.Predicate) float64 {
	var cols []string
	for _, f := range filters {
		if r.ResolvesColumn(f.Column) {
			cols = append(cols, f.Column)
		}
	}
	score := 0.001 * float64(len(cols)) // resolving more filters is better
	for i := 0; i < len(cols); i++ {
		for j := i + 1; j < len(cols); j++ {
			score += e.Ens.AttrRDC[ensemble.AttrKey(cols[i], cols[j])]
		}
	}
	return score
}

// theorem1 evaluates |J| * E(1/F' * 1_C * prod N_T) on one RSPN for a query
// over a subset of the RSPN's tables (Cases 1 and 2), with the variance
// derivation of Section 5.1. extraFns lets Theorem 2 multiply bridge tuple
// factors into the expectation.
func (e *Engine) theorem1(r *rspn.RSPN, tables []string, filters []query.Predicate, outer []string, extraFns map[string]spn.Fn) (Estimate, error) {
	fns := map[string]spn.Fn{}
	for _, c := range r.InverseFactorColumns(tables) {
		fns[c] = spn.FnInv
	}
	for c, fn := range extraFns {
		fns[c] = fn
	}
	// Outer tables keep padded rows: their indicator constraint is
	// dropped, so a row missing the outer side still counts once.
	inner := intersect(subtract(tables, outer), r.Tables)
	term := rspn.Term{Fns: fns, Filters: filters, InnerTables: inner}
	full, err := r.Expectation(term)
	if err != nil {
		return Estimate{}, err
	}
	variance, err := e.termVariance(r, term, full)
	if err != nil {
		return Estimate{}, err
	}
	return scaleEstimate(Estimate{Value: full, Variance: variance}, r.FullSize), nil
}

// termVariance computes the estimator variance of E[term] following
// Section 5.1: the expectation is split into P(C) * E(G | C); the
// probability part is binomial over the model's training sample, the
// conditional part uses Koenig-Huygens with the squared term, and the two
// combine with the product-variance formula.
func (e *Engine) termVariance(r *rspn.RSPN, term rspn.Term, full float64) (float64, error) {
	n := r.Model.RowCount
	if n <= 1 {
		return 0, nil
	}
	probTerm := term
	probTerm.Fns = nil
	p, err := r.Expectation(probTerm)
	if err != nil {
		return 0, err
	}
	varP := stats.BinomialVariance(p, int(n))
	if len(term.Fns) == 0 {
		return varP, nil
	}
	if p <= 0 {
		return 0, nil
	}
	sqTerm := term
	sqTerm.Fns = map[string]spn.Fn{}
	for c, fn := range term.Fns {
		sqTerm.Fns[c] = squareFn(fn)
	}
	sq, err := r.Expectation(sqTerm)
	if err != nil {
		return 0, err
	}
	condMean := full / p
	condVar := sq/p - condMean*condMean
	if condVar < 0 {
		condVar = 0
	}
	nC := n * p
	varCond := condVar / math.Max(1, nC)
	return stats.ProductVariance(p, varP, condMean, varCond), nil
}

// squareFn maps each moment function to its square.
func squareFn(fn spn.Fn) spn.Fn {
	switch fn {
	case spn.FnIdent:
		return spn.FnSquare
	case spn.FnInv:
		return spn.FnInvSquare
	case spn.FnOne:
		return spn.FnOne
	default:
		// Squares of squares are not needed by any compilation.
		return fn
	}
}

// theorem2 combines multiple RSPNs (Case 3). The best-scoring RSPN answers
// the largest connected sub-query it covers, extended across each bridge FK
// edge by multiplying the bridge tuple factor; every remaining branch
// contributes the ratio (estimated count of the branch) / (size of its
// bridgehead table), the Theorem 2 correction under conditional
// independence.
func (e *Engine) theorem2(ctx context.Context, tables []string, filters []query.Predicate, outer []string) (Estimate, error) {
	r := e.pickPartial(tables, filters)
	if r == nil {
		return Estimate{}, fmt.Errorf("core: no RSPN covers any of tables %v", tables)
	}
	sl := e.connectedCovered(tables, r)
	if len(sl) == 0 {
		return Estimate{}, fmt.Errorf("core: internal: empty coverage for %v", tables)
	}
	rest := subtract(tables, sl)
	branches, err := e.branchComponents(rest, sl)
	if err != nil {
		return Estimate{}, err
	}
	// Bridge factors multiply into the left expectation when the branch
	// head is on the Many side of its bridge edge. A fully-outer branch
	// (all its tables outer-joined, hence unfiltered after WHERE
	// normalization) multiplies by max(F, 1): rows without partners still
	// appear once.
	outerSet := toSet(outer)
	extraFns := map[string]spn.Fn{}
	for _, br := range branches {
		if !br.headIsMany {
			continue
		}
		col := tableTupleFactor(br)
		if !r.HasColumn(col) {
			return Estimate{}, fmt.Errorf("core: RSPN %v lacks bridge factor column %s", r.Tables, col)
		}
		if branchAllOuter(br, outerSet) {
			extraFns[col] = spn.FnMax1
		} else {
			extraFns[col] = spn.FnIdent
		}
	}
	// Non-outer branches contribute selectivity ratios; unfiltered outer
	// branches are fully handled by the max(F,1) factor above.
	var active []branch
	for _, br := range branches {
		if !branchAllOuter(br, outerSet) {
			active = append(active, br)
		}
	}
	// The left sub-estimate and every branch ratio are independent
	// evaluations: fan them out over up to Engine.Parallelism goroutines
	// (<= 1 runs sequentially) and combine in deterministic order
	// afterwards.
	ests := make([]Estimate, 1+len(active))
	err = parallel.ForEach(len(ests), e.Parallelism, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if i == 0 {
			left, err := e.theorem1(r, sl, filtersFor(e, sl, filters), intersect(outer, sl), extraFns)
			if err != nil {
				return err
			}
			ests[0] = left
			return nil
		}
		br := active[i-1]
		num, err := e.estimateCount(ctx, br.tables, filtersFor(e, br.tables, filters), intersect(outer, br.tables))
		if err != nil {
			return err
		}
		den, ok := e.Ens.TableRows(br.head)
		if !ok {
			return fmt.Errorf("core: no cardinality statistic or base table for %s (Theorem 2 needs its size)", br.head)
		}
		if den <= 0 {
			// An empty bridgehead table joins to nothing: this branch's
			// ratio is an exact zero. The remaining branches still
			// evaluate, so their errors and cancellation surface the same
			// way regardless of branch order.
			ests[i] = Estimate{}
			return nil
		}
		ests[i] = scaleEstimate(num, 1/den)
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	result := ests[0]
	for _, ratio := range ests[1:] {
		result = mulEstimate(result, ratio)
	}
	return result, nil
}

// branchAllOuter reports whether every table of the branch is outer-joined.
func branchAllOuter(br branch, outer map[string]bool) bool {
	for _, t := range br.tables {
		if !outer[t] {
			return false
		}
	}
	return len(br.tables) > 0
}

// branch is one connected component of the query tables left uncovered,
// attached to the covered set through a bridge FK edge.
type branch struct {
	tables []string
	// head is the branch table adjacent to the covered set.
	head string
	// headIsMany reports whether head is the Many side of the bridge edge
	// (then the covered side's tuple factor F_{s<-head} extends the count;
	// otherwise the FK points from the covered side to head and each
	// covered row has at most one partner).
	headIsMany bool
	// bridgeOne/bridgeMany name the edge for factor-column lookup.
	bridgeOne, bridgeMany string
}

func tableTupleFactor(br branch) string {
	return "__fk_" + br.bridgeOne + "<-" + br.bridgeMany
}

// branchComponents splits the uncovered tables into connected components
// and finds each component's bridge to the covered set.
func (e *Engine) branchComponents(rest, covered []string) ([]branch, error) {
	if len(rest) == 0 {
		return nil, nil
	}
	inRest := toSet(rest)
	inCovered := toSet(covered)
	seen := map[string]bool{}
	var out []branch
	for _, start := range rest {
		if seen[start] {
			continue
		}
		// BFS within rest.
		comp := []string{start}
		seen[start] = true
		for i := 0; i < len(comp); i++ {
			for _, edge := range e.Ens.Schema.NeighborEdges(comp[i]) {
				var nb string
				if edge.Many == comp[i] {
					nb = edge.One
				} else {
					nb = edge.Many
				}
				if inRest[nb] && !seen[nb] {
					seen[nb] = true
					comp = append(comp, nb)
				}
			}
		}
		// Find the bridge edge to the covered set.
		var br *branch
		for _, t := range comp {
			for _, edge := range e.Ens.Schema.NeighborEdges(t) {
				var other string
				headIsMany := false
				if edge.Many == t {
					other = edge.One
					headIsMany = true
				} else {
					other = edge.Many
				}
				if inCovered[other] {
					br = &branch{tables: comp, head: t, headIsMany: headIsMany,
						bridgeOne: edge.One, bridgeMany: edge.Many}
					break
				}
			}
			if br != nil {
				break
			}
		}
		if br == nil {
			return nil, fmt.Errorf("core: tables %v not FK-adjacent to covered set %v", comp, covered)
		}
		out = append(out, *br)
	}
	return out, nil
}

// pickPartial chooses the RSPN for Theorem 2's left side: highest filter
// score, with coverage count as the dominant term so the recursion shrinks.
func (e *Engine) pickPartial(tables []string, filters []query.Predicate) *rspn.RSPN {
	var best *rspn.RSPN
	bestScore := math.Inf(-1)
	for _, r := range e.Ens.RSPNs {
		cov := len(e.connectedCovered(tables, r))
		if cov == 0 {
			continue
		}
		score := float64(cov) + e.filterScore(r, filters)
		if score > bestScore {
			best, bestScore = r, score
		}
	}
	return best
}

// connectedCovered returns the largest connected (in the FK graph) subset
// of the query tables that the RSPN covers.
func (e *Engine) connectedCovered(tables []string, r *rspn.RSPN) []string {
	covered := map[string]bool{}
	for _, t := range tables {
		if r.HasTable(t) {
			covered[t] = true
		}
	}
	if len(covered) == 0 {
		return nil
	}
	var bestComp []string
	seen := map[string]bool{}
	for t := range covered {
		if seen[t] {
			continue
		}
		comp := []string{t}
		seen[t] = true
		for i := 0; i < len(comp); i++ {
			for _, edge := range e.Ens.Schema.NeighborEdges(comp[i]) {
				var nb string
				if edge.Many == comp[i] {
					nb = edge.One
				} else {
					nb = edge.Many
				}
				if covered[nb] && !seen[nb] {
					seen[nb] = true
					comp = append(comp, nb)
				}
			}
		}
		if len(comp) > len(bestComp) {
			bestComp = comp
		}
	}
	sort.Strings(bestComp)
	return bestComp
}

// filtersFor keeps the predicates whose column belongs to one of the given
// tables.
func filtersFor(e *Engine, tables []string, filters []query.Predicate) []query.Predicate {
	var out []query.Predicate
	for _, f := range filters {
		if e.columnOwner(f.Column, tables) != "" {
			out = append(out, f)
		}
	}
	return out
}

// columnOwner returns which of the tables owns the column ("" if none).
// Ownership resolves through the ensemble's persisted statistics (falling
// back to live tables, then schema metadata), so model-only serving
// classifies filters exactly like the data-attached path.
func (e *Engine) columnOwner(col string, tables []string) string {
	for _, tn := range tables {
		if e.Ens.TableHasColumn(tn, col) {
			return tn
		}
	}
	return ""
}

func intersect(a, b []string) []string {
	set := toSet(b)
	var out []string
	for _, x := range a {
		if set[x] {
			out = append(out, x)
		}
	}
	return out
}

func subtract(a, b []string) []string {
	set := toSet(b)
	var out []string
	for _, x := range a {
		if !set[x] {
			out = append(out, x)
		}
	}
	return out
}

func toSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}
