package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/ensemble"
	"repro/internal/exact"
	"repro/internal/query"
	"repro/internal/rspn"
	"repro/internal/schema"
	"repro/internal/table"
)

// figure5 builds the paper's Customer/Order example data.
func figure5(t *testing.T) (*schema.Schema, map[string]*table.Table) {
	t.Helper()
	s := &schema.Schema{Tables: []*schema.Table{
		{
			Name: "customer",
			Columns: []schema.Column{
				{Name: "c_id", Kind: schema.IntKind},
				{Name: "c_age", Kind: schema.IntKind},
				{Name: "c_region", Kind: schema.CategoricalKind},
			},
			PrimaryKey: "c_id",
		},
		{
			Name: "orders",
			Columns: []schema.Column{
				{Name: "o_id", Kind: schema.IntKind},
				{Name: "o_c_id", Kind: schema.IntKind},
				{Name: "o_channel", Kind: schema.CategoricalKind},
			},
			PrimaryKey: "o_id",
			ForeignKeys: []schema.ForeignKey{
				{Column: "o_c_id", RefTable: "customer", RefColumn: "c_id"},
			},
		},
	}}
	cust := table.New(s.Table("customer"))
	reg := cust.Column("c_region")
	eu := float64(reg.Encode("EUROPE"))
	asia := float64(reg.Encode("ASIA"))
	cust.AppendRow(table.Int(1), table.Int(20), table.Float(eu))
	cust.AppendRow(table.Int(2), table.Int(50), table.Float(eu))
	cust.AppendRow(table.Int(3), table.Int(80), table.Float(asia))
	ord := table.New(s.Table("orders"))
	ch := ord.Column("o_channel")
	online := float64(ch.Encode("ONLINE"))
	store := float64(ch.Encode("STORE"))
	ord.AppendRow(table.Int(1), table.Int(1), table.Float(online))
	ord.AppendRow(table.Int(2), table.Int(1), table.Float(store))
	ord.AppendRow(table.Int(3), table.Int(3), table.Float(online))
	ord.AppendRow(table.Int(4), table.Int(3), table.Float(store))
	return s, map[string]*table.Table{"customer": cust, "orders": ord}
}

// exactEnsemble builds an exact (memorizing) ensemble; joint controls
// whether the customer-orders pair is learned jointly or as single tables.
func exactEnsemble(t *testing.T, joint bool) (*Engine, *schema.Schema, map[string]*table.Table) {
	t.Helper()
	s, tabs := figure5(t)
	rel := s.Relationships()[0]
	if err := table.AddTupleFactor(tabs["customer"], tabs["orders"], rel); err != nil {
		t.Fatal(err)
	}
	opts := rspn.DefaultLearnOptions()
	opts.Exact = true
	var members []*rspn.RSPN
	if joint {
		spec := table.JoinSpec{Tables: []string{"customer", "orders"}, Edges: []schema.Relationship{rel}}
		j, err := table.FullOuterJoin(tabs, spec)
		if err != nil {
			t.Fatal(err)
		}
		cols := rspn.LearnColumns(s, j, spec.Tables, nil)
		r, err := rspn.Learn(context.Background(), j, spec.Tables, spec.Edges, cols, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, r)
	} else {
		for _, tn := range []string{"customer", "orders"} {
			cols := rspn.LearnColumns(s, tabs[tn], []string{tn}, nil)
			r, err := rspn.Learn(context.Background(), tabs[tn], []string{tn}, nil, cols, nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			members = append(members, r)
		}
	}
	ens := ensemble.NewManual(s, tabs, members, ensemble.DefaultConfig())
	return New(ens), s, tabs
}

func euCode(tabs map[string]*table.Table) float64 {
	return float64(tabs["customer"].Column("c_region").Lookup("EUROPE"))
}

func onlineCode(tabs map[string]*table.Table) float64 {
	return float64(tabs["orders"].Column("o_channel").Lookup("ONLINE"))
}

func TestQ1ExactMatch(t *testing.T) {
	e, _, tabs := exactEnsemble(t, false)
	est, err := e.EstimateCardinality(query.Query{
		Aggregate: query.Count, Tables: []string{"customer"},
		Filters: []query.Predicate{{Column: "c_region", Op: query.Eq, Value: euCode(tabs)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-2) > 1e-9 {
		t.Fatalf("Q1 = %v, want 2", est.Value)
	}
}

func TestQ2Case1JointRSPN(t *testing.T) {
	e, _, tabs := exactEnsemble(t, true)
	est, err := e.EstimateCardinality(query.Query{
		Aggregate: query.Count, Tables: []string{"customer", "orders"},
		Filters: []query.Predicate{
			{Column: "c_region", Op: query.Eq, Value: euCode(tabs)},
			{Column: "o_channel", Op: query.Eq, Value: onlineCode(tabs)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-1) > 1e-9 {
		t.Fatalf("Q2 (Case 1) = %v, want 1", est.Value)
	}
}

func TestQ1Case2LargerRSPN(t *testing.T) {
	// Only the joint RSPN exists; the single-table query must normalize by
	// tuple factors (Case 2).
	e, _, tabs := exactEnsemble(t, true)
	est, err := e.EstimateCardinality(query.Query{
		Aggregate: query.Count, Tables: []string{"customer"},
		Filters: []query.Predicate{{Column: "c_region", Op: query.Eq, Value: euCode(tabs)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-2) > 1e-9 {
		t.Fatalf("Q1 (Case 2) = %v, want 2 (paper)", est.Value)
	}
}

func TestQ2Case3CombineRSPNs(t *testing.T) {
	// Only single-table RSPNs exist; the join query requires Theorem 2.
	e, _, tabs := exactEnsemble(t, false)
	est, err := e.EstimateCardinality(query.Query{
		Aggregate: query.Count, Tables: []string{"customer", "orders"},
		Filters: []query.Predicate{
			{Column: "c_region", Op: query.Eq, Value: euCode(tabs)},
			{Column: "o_channel", Op: query.Eq, Value: onlineCode(tabs)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-1) > 1e-9 {
		t.Fatalf("Q2 (Case 3) = %v, want 1 (paper)", est.Value)
	}
}

func TestUnfilteredJoinSize(t *testing.T) {
	for _, joint := range []bool{true, false} {
		e, _, _ := exactEnsemble(t, joint)
		est, err := e.EstimateCardinality(query.Query{
			Aggregate: query.Count, Tables: []string{"customer", "orders"}})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.Value-4) > 1e-9 {
			t.Fatalf("joint=%v: |C join O| = %v, want 4", joint, est.Value)
		}
	}
}

func TestQ3AvgCase1(t *testing.T) {
	e, _, tabs := exactEnsemble(t, false)
	res, err := e.Execute(query.Query{
		Aggregate: query.Avg, AggColumn: "c_age", Tables: []string{"customer"},
		Filters: []query.Predicate{{Column: "c_region", Op: query.Eq, Value: euCode(tabs)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Groups[0].Estimate.Value; math.Abs(got-35) > 1e-9 {
		t.Fatalf("Q3 AVG = %v, want 35", got)
	}
}

func TestQ3AvgCase2Normalized(t *testing.T) {
	// Joint RSPN only: the AVG must normalize by tuple factors, otherwise
	// customers with two orders count double (paper gets 35, naive 43.3).
	e, _, tabs := exactEnsemble(t, true)
	res, err := e.Execute(query.Query{
		Aggregate: query.Avg, AggColumn: "c_age", Tables: []string{"customer"},
		Filters: []query.Predicate{{Column: "c_region", Op: query.Eq, Value: euCode(tabs)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Groups[0].Estimate.Value; math.Abs(got-35) > 1e-9 {
		t.Fatalf("Q3 AVG (Case 2) = %v, want 35 (paper)", got)
	}
}

func TestSumEqualsCountTimesAvg(t *testing.T) {
	e, _, tabs := exactEnsemble(t, false)
	res, err := e.Execute(query.Query{
		Aggregate: query.Sum, AggColumn: "c_age", Tables: []string{"customer"},
		Filters: []query.Predicate{{Column: "c_region", Op: query.Eq, Value: euCode(tabs)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Groups[0].Estimate.Value; math.Abs(got-70) > 1e-9 {
		t.Fatalf("SUM = %v, want 70", got)
	}
}

func TestGroupByFromModel(t *testing.T) {
	e, _, _ := exactEnsemble(t, false)
	res, err := e.Execute(query.Query{
		Aggregate: query.Count, Tables: []string{"customer"}, GroupBy: []string{"c_region"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(res.Groups))
	}
	total := 0.0
	for _, g := range res.Groups {
		total += g.Estimate.Value
	}
	if math.Abs(total-3) > 1e-9 {
		t.Fatalf("group total = %v, want 3", total)
	}
}

func TestGroupByJoinAvg(t *testing.T) {
	e, _, _ := exactEnsemble(t, true)
	res, err := e.Execute(query.Query{
		Aggregate: query.Avg, AggColumn: "c_age",
		Tables: []string{"customer", "orders"}, GroupBy: []string{"o_channel"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exact executor gives 50 for both channels (customers 1 and 3).
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(res.Groups))
	}
	for _, g := range res.Groups {
		if math.Abs(g.Estimate.Value-50) > 1e-9 {
			t.Fatalf("group %v AVG = %v, want 50", g.Key, g.Estimate.Value)
		}
	}
}

func TestConfidenceIntervalContainsEstimate(t *testing.T) {
	e, _, tabs := exactEnsemble(t, true)
	res, err := e.Execute(query.Query{
		Aggregate: query.Count, Tables: []string{"customer"},
		Filters: []query.Predicate{{Column: "c_region", Op: query.Eq, Value: euCode(tabs)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Groups[0]
	if g.CILow > g.Estimate.Value || g.CIHigh < g.Estimate.Value {
		t.Fatalf("CI [%v, %v] must contain estimate %v", g.CILow, g.CIHigh, g.Estimate.Value)
	}
	if g.CIHigh <= g.CILow {
		t.Fatal("CI must have positive width for a sampled model")
	}
}

func TestEstimateErrors(t *testing.T) {
	e, _, _ := exactEnsemble(t, false)
	if _, err := e.EstimateCardinality(query.Query{Aggregate: query.Count, Tables: []string{"nope"}}); err == nil {
		t.Fatal("expected unknown-table error")
	}
	if _, err := e.Execute(query.Query{Aggregate: query.Avg, AggColumn: "zzz", Tables: []string{"customer"}}); err == nil {
		t.Fatal("expected unknown aggregate column error")
	}
}

// ---- Statistical accuracy on generated data ----

// chainSchema and chainData mirror the ensemble tests' 3-table generator.
func chainSchema() *schema.Schema {
	return &schema.Schema{Tables: []*schema.Table{
		{Name: "customer", Columns: []schema.Column{
			{Name: "c_id", Kind: schema.IntKind},
			{Name: "c_age", Kind: schema.IntKind},
			{Name: "c_region", Kind: schema.IntKind}},
			PrimaryKey: "c_id"},
		{Name: "orders", Columns: []schema.Column{
			{Name: "o_id", Kind: schema.IntKind},
			{Name: "o_c_id", Kind: schema.IntKind},
			{Name: "o_channel", Kind: schema.IntKind}},
			PrimaryKey:  "o_id",
			ForeignKeys: []schema.ForeignKey{{Column: "o_c_id", RefTable: "customer", RefColumn: "c_id"}}},
		{Name: "orderline", Columns: []schema.Column{
			{Name: "l_id", Kind: schema.IntKind},
			{Name: "l_o_id", Kind: schema.IntKind},
			{Name: "l_qty", Kind: schema.IntKind}},
			PrimaryKey:  "l_id",
			ForeignKeys: []schema.ForeignKey{{Column: "l_o_id", RefTable: "orders", RefColumn: "o_id"}}},
	}}
}

func chainData(s *schema.Schema, nCust int, seed int64) map[string]*table.Table {
	rng := rand.New(rand.NewSource(seed))
	cust := table.New(s.Table("customer"))
	ord := table.New(s.Table("orders"))
	line := table.New(s.Table("orderline"))
	oid, lid := 0, 0
	for c := 0; c < nCust; c++ {
		region := float64(rng.Intn(3))
		age := float64(20 + rng.Intn(60))
		cust.AppendRow(table.Int(c), table.Float(age), table.Float(region))
		for o := 0; o < rng.Intn(4); o++ {
			channel := region
			if rng.Float64() < 0.1 {
				channel = float64(rng.Intn(3))
			}
			ord.AppendRow(table.Int(oid), table.Int(c), table.Float(channel))
			for l := 0; l < 1+rng.Intn(3); l++ {
				qty := channel*10 + float64(rng.Intn(3))
				line.AppendRow(table.Int(lid), table.Int(oid), table.Float(qty))
				lid++
			}
			oid++
		}
	}
	return map[string]*table.Table{"customer": cust, "orders": ord, "orderline": line}
}

func buildChainEngine(t *testing.T, budget float64) (*Engine, *exact.Engine) {
	t.Helper()
	s := chainSchema()
	tabs := chainData(s, 1500, 42)
	oracle := exact.New(s, tabs)
	cfg := ensemble.DefaultConfig()
	cfg.BudgetFactor = budget
	cfg.MaxSamples = 30000
	ens, err := ensemble.Build(context.Background(), s, tabs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(ens), oracle
}

func TestCardinalityAccuracyOnChain(t *testing.T) {
	eng, oracle := buildChainEngine(t, 0)
	queries := []query.Query{
		{Aggregate: query.Count, Tables: []string{"customer"},
			Filters: []query.Predicate{{Column: "c_age", Op: query.Lt, Value: 40}}},
		{Aggregate: query.Count, Tables: []string{"customer", "orders"},
			Filters: []query.Predicate{{Column: "c_region", Op: query.Eq, Value: 1}}},
		{Aggregate: query.Count, Tables: []string{"customer", "orders"},
			Filters: []query.Predicate{
				{Column: "c_region", Op: query.Eq, Value: 0},
				{Column: "o_channel", Op: query.Eq, Value: 0}}},
		{Aggregate: query.Count, Tables: []string{"customer", "orders", "orderline"},
			Filters: []query.Predicate{
				{Column: "o_channel", Op: query.Eq, Value: 2},
				{Column: "l_qty", Op: query.Ge, Value: 20}}},
		{Aggregate: query.Count, Tables: []string{"orders", "orderline"},
			Filters: []query.Predicate{{Column: "l_qty", Op: query.Le, Value: 10}}},
	}
	for i, q := range queries {
		truth, err := oracle.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		est, err := eng.EstimateCardinality(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if qe := query.QError(est.Value, truth); qe > 3 {
			t.Errorf("query %d (%v): q-error %.2f (est %.1f true %.1f)", i, q, qe, est.Value, truth)
		}
	}
}

func TestAQPAccuracyOnChain(t *testing.T) {
	eng, oracle := buildChainEngine(t, 0)
	q := query.Query{Aggregate: query.Avg, AggColumn: "l_qty",
		Tables:  []string{"orders", "orderline"},
		Filters: []query.Predicate{{Column: "o_channel", Op: query.Eq, Value: 1}}}
	truth, err := oracle.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := query.RelativeError(res.Groups[0].Estimate.Value, truth.Scalar()); rel > 0.15 {
		t.Fatalf("AVG relative error %.3f too high (est %.2f true %.2f)",
			rel, res.Groups[0].Estimate.Value, truth.Scalar())
	}
}

func TestGroupByAQPAccuracy(t *testing.T) {
	eng, oracle := buildChainEngine(t, 0)
	q := query.Query{Aggregate: query.Count, Tables: []string{"customer"},
		GroupBy: []string{"c_region"}}
	truth, err := oracle.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := query.AvgRelativeError(res.ToResult(), truth); rel > 0.1 {
		t.Fatalf("group-by avg relative error %.3f too high", rel)
	}
}

func TestConfidenceIntervalCoverage(t *testing.T) {
	eng, oracle := buildChainEngine(t, 0)
	// Across a set of count queries, the 95% CI should usually contain the
	// truth. With a handful of queries we only require a majority, since
	// SPN structure error (not sampling error) can dominate.
	queries := []query.Query{
		{Aggregate: query.Count, Tables: []string{"customer"},
			Filters: []query.Predicate{{Column: "c_age", Op: query.Lt, Value: 50}}},
		{Aggregate: query.Count, Tables: []string{"customer"},
			Filters: []query.Predicate{{Column: "c_region", Op: query.Eq, Value: 2}}},
		{Aggregate: query.Count, Tables: []string{"orders"},
			Filters: []query.Predicate{{Column: "o_channel", Op: query.Eq, Value: 0}}},
		{Aggregate: query.Count, Tables: []string{"orderline"},
			Filters: []query.Predicate{{Column: "l_qty", Op: query.Ge, Value: 15}}},
	}
	hits := 0
	for _, q := range queries {
		truth, err := oracle.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		g := res.Groups[0]
		if g.CILow <= truth && truth <= g.CIHigh {
			hits++
		}
	}
	if hits < len(queries)/2 {
		t.Fatalf("CI coverage %d/%d too low", hits, len(queries))
	}
}

func TestMedianStrategy(t *testing.T) {
	eng, oracle := buildChainEngine(t, 2) // budget ensures overlapping RSPNs
	eng.Strategy = StrategyMedian
	q := query.Query{Aggregate: query.Count, Tables: []string{"customer", "orders"},
		Filters: []query.Predicate{{Column: "c_region", Op: query.Eq, Value: 1}}}
	truth, err := oracle.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	est, err := eng.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if qe := query.QError(est.Value, truth); qe > 3 {
		t.Fatalf("median strategy q-error %.2f (est %.1f true %.1f)", qe, est.Value, truth)
	}
}

func TestEstimateArithmetic(t *testing.T) {
	a := Estimate{Value: 10, Variance: 4}
	b := Estimate{Value: 5, Variance: 1}
	p := mulEstimate(a, b)
	if p.Value != 50 {
		t.Fatalf("mul value = %v", p.Value)
	}
	wantVar := 4*1 + 4*25 + 1*100
	if math.Abs(p.Variance-float64(wantVar)) > 1e-9 {
		t.Fatalf("mul variance = %v, want %v", p.Variance, wantVar)
	}
	d := divEstimate(a, b)
	if d.Value != 2 {
		t.Fatalf("div value = %v", d.Value)
	}
	if divEstimate(a, Estimate{}).Value != 0 {
		t.Fatal("div by zero estimate should be 0")
	}
	sc := scaleEstimate(a, 3)
	if sc.Value != 30 || sc.Variance != 36 {
		t.Fatalf("scale = %+v", sc)
	}
	lo, hi := a.ConfidenceInterval(0.95)
	if lo >= 10 || hi <= 10 || math.Abs((hi-lo)-2*1.96*2) > 0.01 {
		t.Fatalf("CI = [%v, %v]", lo, hi)
	}
}
