package core

// plan_exec.go executes compiled plans through a batched evaluator.
// Execution has three phases:
//
//  1. gather: walk the plan's compiled structure for every binding (each
//     ExecBatch query, each GROUP BY key, each Theorem-2 branch, each
//     inclusion-exclusion term, and each variance part) and collect the
//     SPN inference requests it needs, grouped per RSPN;
//  2. evaluate: answer each RSPN's requests in chunks over its flattened
//     model arrays (spn.Compiled), fanning the chunks over up to
//     Engine.Parallelism workers;
//  3. resolve: combine the evaluated expectations into estimates with
//     exactly the arithmetic (and combination order) of the former
//     per-call path, so batched and one-at-a-time execution produce
//     bit-identical results.
//
// The former path paid one full model traversal — plus a map allocation
// and a weight renormalization per sum node — for every expectation; a
// GROUP BY over k keys with variance terms cost 3k+ traversals. The
// batched walk pays one pass per chunk instead.

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/rspn"
	"repro/internal/spn"
)

// estimator resolves one enqueued estimate after the batch has run.
type estimator func() (Estimate, error)

// batchGroup is the request batch of one RSPN.
type batchGroup struct {
	r    *rspn.RSPN
	reqs []spn.Request
	vals []float64
}

// valRef locates one enqueued request's evaluated value.
type valRef struct {
	g   *batchGroup
	idx int
}

func (v valRef) value() float64 { return v.g.vals[v.idx] }

// batcher collects every inference request one execution needs, grouped
// per RSPN and in deterministic order. A plan touches a handful of RSPNs,
// so a linear scan beats a map.
type batcher struct {
	order []*batchGroup
	// hint presizes each group's request slice (an execution knows
	// roughly how many bindings it will enqueue).
	hint int
}

func newBatcher(hint int) *batcher { return &batcher{hint: hint} }

// addRequest appends a prebuilt request to its RSPN's batch.
func (b *batcher) addRequest(r *rspn.RSPN, req spn.Request) valRef {
	var g *batchGroup
	for _, cand := range b.order {
		if cand.r == r {
			g = cand
			break
		}
	}
	if g == nil {
		g = &batchGroup{r: r}
		if b.hint > 0 {
			g.reqs = make([]spn.Request, 0, b.hint)
		}
		b.order = append(b.order, g)
	}
	g.reqs = append(g.reqs, req)
	return valRef{g: g, idx: len(g.reqs) - 1}
}

// run evaluates all collected requests. Each RSPN's batch is split into
// chunks sized so roughly `parallelism` chunks exist across the whole
// execution, and the chunks are fanned over up to `parallelism` workers —
// the WithParallelism fan-out now spans individual expectations rather
// than whole groups or branches, so load balances evenly. Each chunk is
// one pass over its model's flat arrays — or one eng.Eval dispatch when
// the engine carries an evaluator hook; chunk boundaries are identical
// either way, so the hook sees exactly the request groups the in-process
// path would evaluate.
func (b *batcher) run(ctx context.Context, eng *Engine) error {
	parallelism := eng.Parallelism
	total := 0
	for _, g := range b.order {
		total += len(g.reqs)
	}
	if total == 0 {
		return ctx.Err()
	}
	// Chunk sizing: split roughly evenly across workers, but keep chunks
	// large enough to amortize a pass over the flat arrays and small
	// enough to bound the per-pass scratch (O(model nodes x chunk size))
	// and honor cancellation between passes.
	const minChunk, maxChunk = 8, 128
	size := total
	if parallelism > 1 {
		size = (total + parallelism - 1) / parallelism
	}
	if size < minChunk {
		size = minChunk
	}
	if size > maxChunk {
		size = maxChunk
	}
	type chunk struct {
		g      *batchGroup
		lo, hi int
	}
	var chunks []chunk
	for _, g := range b.order {
		g.vals = make([]float64, len(g.reqs))
		for lo := 0; lo < len(g.reqs); lo += size {
			hi := lo + size
			if hi > len(g.reqs) {
				hi = len(g.reqs)
			}
			chunks = append(chunks, chunk{g: g, lo: lo, hi: hi})
		}
	}
	eval := func(ck chunk) error {
		if eng.Eval != nil {
			return eng.Eval.EvaluateRSPN(ctx, ck.g.r, ck.g.reqs[ck.lo:ck.hi], ck.g.vals[ck.lo:ck.hi])
		}
		return ck.g.r.EvaluateRequests(ck.g.reqs[ck.lo:ck.hi], ck.g.vals[ck.lo:ck.hi])
	}
	if parallelism <= 1 {
		for _, ck := range chunks {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := eval(ck); err != nil {
				return err
			}
		}
		return nil
	}
	return parallel.ForEach(len(chunks), parallelism, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return eval(chunks[i])
	})
}

// ---- per-node gather/resolve ----

// termRefs bundles the value refs one expectation-with-variance needs:
// the full term, the probability-only term for the binomial part, and the
// squared term for the conditional part (Section 5.1).
type termRefs struct {
	full, prob, sq valRef
	n              float64
	hasVar, hasFns bool
}

// buildTermRequest binds the term's constraint set: through the
// precompiled template (an ordinal-indexed fill of prebuilt slots) when
// available, through the generic BuildRequest derivation otherwise. The
// fallback also carries the original error-surfacing behavior for terms
// whose template could not compile (e.g. an unresolvable filter column).
func buildTermRequest(r *rspn.RSPN, tmpl *rspn.TermTemplate, keptIdx []int,
	fns map[string]spn.Fn, inner []string, notNull []string,
	preds []query.Predicate, keep map[string]bool) (spn.Request, error) {
	if tmpl != nil {
		req, ok, err := tmpl.BindIndexed(preds, keptIdx)
		if err != nil {
			return spn.Request{}, err
		}
		if ok {
			return req, nil
		}
	}
	term := rspn.Term{Fns: fns, Filters: selectPreds(preds, keep), InnerTables: inner, NotNull: notNull}
	return r.BuildRequest(term)
}

// enqueueTerm collects the full/probability/squared expectations of one
// bound request (the latter two only when the model's row count makes the
// variance non-trivial, matching the former per-call control flow). The
// probability and squared requests are derived from the full request by
// rewriting the per-column moment functions — exactly the requests the
// Fns-stripped and Fns-squared terms would build, at a fraction of the
// cost.
func enqueueTerm(b *batcher, r *rspn.RSPN, req spn.Request, hasFns bool) termRefs {
	t := termRefs{n: r.Model.RowCount, hasFns: hasFns}
	t.full = b.addRequest(r, req)
	t.hasVar = t.n > 1
	if t.hasVar {
		if !t.hasFns {
			// Without moment functions the probability-only term *is* the
			// term: reuse the full request's value instead of evaluating
			// the identical request again (the per-call path paid a whole
			// second traversal here).
			t.prob = t.full
		} else {
			t.prob = b.addRequest(r, probRequest(req))
			t.sq = b.addRequest(r, squareRequest(req))
		}
	}
	return t
}

// probRequest derives the probability-only request of a term's request:
// every moment function reverts to the indicator FnOne, and columns whose
// only constraint was their moment function drop out entirely — the same
// constraint set the term with Fns stripped would build.
func probRequest(req spn.Request) spn.Request {
	cols := make([]spn.ColQuery, 0, len(req.Cols))
	for _, c := range req.Cols {
		if len(c.Ranges) == 0 && !c.ExcludeNull {
			continue
		}
		c.Fn = spn.FnOne
		cols = append(cols, c)
	}
	return spn.Request{Cols: cols}
}

// squareRequest derives the squared-moment request: identical constraints
// with every moment function squared (Koenig-Huygens term of Section 5.1).
func squareRequest(req spn.Request) spn.Request {
	cols := make([]spn.ColQuery, len(req.Cols))
	for i, c := range req.Cols {
		c.Fn = squareFn(c.Fn)
		cols[i] = c
	}
	return spn.Request{Cols: cols}
}

// estimate reads the evaluated parts into an (unscaled) estimate.
func (t termRefs) estimate() Estimate {
	v := t.full.value()
	variance := 0.0
	if t.hasVar {
		sq := 0.0
		if t.hasFns {
			sq = t.sq.value()
		}
		variance = momentVariance(t.n, t.prob.value(), v, sq, t.hasFns)
	}
	return Estimate{Value: v, Variance: variance}
}

// enqueue collects one Theorem-1 evaluation |J| * E(fns * 1_C * prod N_T)
// with its variance parts.
func (t t1call) enqueue(b *batcher, preds []query.Predicate) (estimator, error) {
	req, err := buildTermRequest(t.r, t.tmpl, t.keptIdx, t.fns, t.inner, nil, preds, t.keep)
	if err != nil {
		return nil, err
	}
	refs := enqueueTerm(b, t.r, req, len(t.fns) > 0)
	size := t.r.FullSize
	return func() (Estimate, error) {
		return scaleEstimate(refs.estimate(), size), nil
	}, nil
}

// enqueue collects one compiled COUNT node: the single call, the median
// panel, or the Theorem-2 left side plus every branch sub-plan — all
// independent, so they land in the same batch.
func (n *countNode) enqueue(e *Engine, b *batcher, preds []query.Predicate) (estimator, error) {
	switch n.kind {
	case ckSingle:
		return n.single.enqueue(b, preds)
	case ckMedian:
		resolvers := make([]estimator, len(n.median))
		for i, call := range n.median {
			res, err := call.enqueue(b, preds)
			if err != nil {
				return nil, err
			}
			resolvers[i] = res
		}
		// The median: the middle estimate for an odd member count, the
		// average of the two middle estimates for an even one (variance of
		// the two-point mean, treating the members as independent).
		return func() (Estimate, error) {
			ests := make([]Estimate, 0, len(resolvers))
			for _, res := range resolvers {
				est, err := res()
				if err != nil {
					return Estimate{}, err
				}
				ests = append(ests, est)
			}
			sort.Slice(ests, func(i, j int) bool { return ests[i].Value < ests[j].Value })
			m := len(ests)
			if m%2 == 1 {
				return ests[m/2], nil
			}
			lo, hi := ests[m/2-1], ests[m/2]
			return Estimate{
				Value:    (lo.Value + hi.Value) / 2,
				Variance: (lo.Variance + hi.Variance) / 4,
			}, nil
		}, nil
	default: // ckTheorem2
		left, err := n.left.enqueue(b, preds)
		if err != nil {
			return nil, err
		}
		branches := make([]estimator, len(n.branches))
		for i, br := range n.branches {
			sub, err := br.node.enqueue(e, b, selectPreds(preds, br.keep))
			if err != nil {
				return nil, err
			}
			branches[i] = sub
		}
		plans := n.branches
		return func() (Estimate, error) {
			result, err := left()
			if err != nil {
				return Estimate{}, err
			}
			for i, res := range branches {
				num, err := res()
				if err != nil {
					return Estimate{}, err
				}
				den, ok := e.Ens.TableRows(plans[i].br.head)
				if !ok {
					return Estimate{}, fmt.Errorf("core: no cardinality statistic or base table for %s (Theorem 2 needs its size)", plans[i].br.head)
				}
				var ratio Estimate
				if den > 0 {
					ratio = scaleEstimate(num, 1/den)
				}
				// den <= 0: an empty bridgehead table joins to nothing, so
				// the branch ratio is an exact zero.
				result = mulEstimate(result, ratio)
			}
			return result, nil
		}, nil
	}
}

// enqueue collects one signed SUM term: either the direct single
// expectation, or the COUNT * AVG fallback of Section 4.2.
func (s signedSum) enqueue(e *Engine, b *batcher, preds []query.Predicate) (estimator, error) {
	if s.direct != nil {
		return s.direct.enqueue(b, preds)
	}
	cnt, err := s.cnt.enqueue(e, b, preds)
	if err != nil {
		return nil, err
	}
	av, err := s.avg.enqueue(b, preds)
	if err != nil {
		return nil, err
	}
	return func() (Estimate, error) {
		cntE, err := cnt()
		if err != nil {
			return Estimate{}, err
		}
		avE, err := av()
		if err != nil {
			return Estimate{}, err
		}
		return mulEstimate(cntE, avE), nil
	}, nil
}

// enqueue collects the AVG ratio of expectations (numerator, denominator,
// and their variance parts — six requests, one batch).
func (a *avgNode) enqueue(b *batcher, preds []query.Predicate) (estimator, error) {
	numReq, err := buildTermRequest(a.r, a.numTmpl, a.keptIdx, a.numFns, a.inner, nil, preds, a.keep)
	if err != nil {
		return nil, err
	}
	denReq, err := buildTermRequest(a.r, a.denTmpl, a.keptIdx, a.denFns, a.inner, []string{a.aggCol}, preds, a.keep)
	if err != nil {
		return nil, err
	}
	num := enqueueTerm(b, a.r, numReq, len(a.numFns) > 0)
	den := enqueueTerm(b, a.r, denReq, len(a.denFns) > 0)
	return func() (Estimate, error) {
		denE := den.estimate()
		if denE.Value <= 0 {
			return Estimate{}, nil
		}
		return divEstimate(num.estimate(), denE), nil
	}, nil
}

// enqueueSigned collects a list of signed inclusion-exclusion terms for
// one predicate binding. The resolver combines them in deterministic term
// order; variances add — the terms are not independent, so this is the
// conservative bound. clampZero applies COUNT's lower bound of zero (SUM
// distributes over inclusion-exclusion with its sign and stays unclamped).
func enqueueSigned(b *batcher, n int, clampZero bool,
	enqueue func(i int) (estimator, float64, error)) (estimator, error) {
	resolvers := make([]estimator, n)
	signs := make([]float64, n)
	for i := 0; i < n; i++ {
		res, sign, err := enqueue(i)
		if err != nil {
			return nil, err
		}
		resolvers[i], signs[i] = res, sign
	}
	return func() (Estimate, error) {
		var total Estimate
		for i, res := range resolvers {
			est, err := res()
			if err != nil {
				return Estimate{}, err
			}
			total.Value += signs[i] * est.Value
			total.Variance += est.Variance
		}
		if clampZero && total.Value < 0 {
			total.Value = 0
		}
		return total, nil
	}, nil
}

// enqueueCount collects the signed COUNT terms for one predicate binding.
func (p *Plan) enqueueCount(b *batcher, terms []signedCount, base, disj []query.Predicate) (estimator, error) {
	if len(terms) == 1 && terms[0].mask == 0 {
		return terms[0].node.enqueue(p.eng, b, base)
	}
	return enqueueSigned(b, len(terms), true, func(i int) (estimator, float64, error) {
		res, err := terms[i].node.enqueue(p.eng, b, maskPreds(base, disj, terms[i].mask))
		return res, terms[i].sign, err
	})
}

// enqueueSum collects the signed SUM terms.
func (p *Plan) enqueueSum(b *batcher, base, disj []query.Predicate) (estimator, error) {
	terms := p.sum
	if len(terms) == 1 && terms[0].mask == 0 {
		return terms[0].enqueue(p.eng, b, base)
	}
	return enqueueSigned(b, len(terms), false, func(i int) (estimator, float64, error) {
		res, err := terms[i].enqueue(p.eng, b, maskPreds(base, disj, terms[i].mask))
		return res, terms[i].sign, err
	})
}

// enqueueAggregate collects the plan's aggregate for one bound predicate
// set. countTerms is the COUNT estimator matching the predicate set (card
// for the base query, count for the group template).
func (p *Plan) enqueueAggregate(b *batcher, countTerms []signedCount, preds, disj []query.Predicate) (estimator, error) {
	switch p.q.Aggregate {
	case query.Count:
		return p.enqueueCount(b, countTerms, preds, disj)
	case query.Sum:
		return p.enqueueSum(b, preds, disj)
	case query.Avg:
		if p.avg != nil {
			return p.avg.enqueue(b, preds)
		}
		sum, err := p.enqueueSum(b, preds, disj)
		if err != nil {
			return nil, err
		}
		cnt, err := p.enqueueCount(b, countTerms, preds, disj)
		if err != nil {
			return nil, err
		}
		return func() (Estimate, error) {
			s, err := sum()
			if err != nil {
				return Estimate{}, err
			}
			c, err := cnt()
			if err != nil {
				return Estimate{}, err
			}
			return divEstimate(s, c), nil
		}, nil
	default:
		return nil, fmt.Errorf("core: unsupported aggregate %v", p.q.Aggregate)
	}
}

// ---- execution ----

// ExecuteQuery runs the plan against a fully-bound concrete query that
// shares the plan's shape — the entry point for plan-cache reuse, where
// the concrete query may differ from the template in literal values only.
func (p *Plan) ExecuteQuery(ctx context.Context, opts ExecOpts, q query.Query) (AQPResult, error) {
	res, err := p.ExecuteBatch(ctx, opts, []query.Query{q})
	if err != nil {
		return AQPResult{}, err
	}
	return res[0], nil
}

// ExecuteBatch executes the plan for many bound queries of the plan's
// shape in one batched evaluation: every query's expectation requests —
// and for GROUP BY queries, every group key's — are collected and
// answered together on each model's flat arrays, instead of one traversal
// per query per group per moment. Results are returned in query order and
// are bit-identical to executing the queries one at a time.
func (p *Plan) ExecuteBatch(ctx context.Context, opts ExecOpts, queries []query.Query) ([]AQPResult, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	for _, q := range queries {
		if err := p.checkBound(q); err != nil {
			return nil, err
		}
	}
	if err := p.ensureExec(); err != nil {
		return nil, err
	}
	level := p.level(opts)
	if len(p.groupCols) == 0 {
		b := newBatcher(2 * len(queries))
		resolvers := make([]estimator, len(queries))
		for i, q := range queries {
			res, err := p.enqueueAggregate(b, p.card, q.Filters, q.Disjunction)
			if err != nil {
				return nil, err
			}
			resolvers[i] = res
		}
		if err := b.run(ctx, p.eng); err != nil {
			return nil, err
		}
		out := make([]AQPResult, len(queries))
		for i, res := range resolvers {
			est, err := res()
			if err != nil {
				return nil, batchEntryErr(len(queries), i, err)
			}
			out[i] = AQPResult{Groups: []AQPGroup{finish(nil, est, level)}}
		}
		return out, nil
	}
	return p.executeGroupsBatch(ctx, queries, level)
}

// batchEntryErr attributes a resolve-phase error to its batch entry —
// pointless noise for a single-query execution, essential context for a
// multi-binding batch.
func batchEntryErr(batchLen, i int, err error) error {
	if batchLen <= 1 {
		return err
	}
	return fmt.Errorf("batch entry %d: %w", i, err)
}

// executeGroupsBatch answers GROUP BY executions in two batched stages:
// stage one evaluates the per-group COUNT gate of every (query, key)
// pair in one batch; stage two evaluates the aggregate of every surviving
// group (skipped entirely for COUNT queries, whose gate is the answer).
func (p *Plan) executeGroupsBatch(ctx context.Context, queries []query.Query, level float64) ([]AQPResult, error) {
	nk := p.numGroups
	if nk > maxMaterializedGroups {
		return nil, fmt.Errorf("core: group-by produces more than %d groups (stream them with ExecuteGroupsIter)", maxMaterializedGroups)
	}
	bindings := make([][]query.Predicate, len(queries)*nk)
	gates := make([]estimator, len(queries)*nk)
	b := newBatcher(2 * len(queries) * nk)
	var keyBuf []float64
	for qi, q := range queries {
		for ki := 0; ki < nk; ki++ {
			keyBuf = groupKeyAt(p.groupVals, ki, keyBuf)
			preds := make([]query.Predicate, 0, len(q.Filters)+len(keyBuf))
			preds = append(preds, q.Filters...)
			preds = append(preds, groupFilters(p.groupCols, keyBuf)...)
			i := qi*nk + ki
			bindings[i] = preds
			res, err := p.enqueueCount(b, p.count, preds, q.Disjunction)
			if err != nil {
				return nil, err
			}
			gates[i] = res
		}
	}
	if err := b.run(ctx, p.eng); err != nil {
		return nil, err
	}
	counts := make([]Estimate, len(gates))
	live := make([]bool, len(gates))
	for i, res := range gates {
		est, err := res()
		if err != nil {
			return nil, batchEntryErr(len(queries), i/nk, err)
		}
		counts[i] = est
		// A group the model believes empty is dropped from the result.
		live[i] = est.Value >= 0.5
	}
	aggs := make([]estimator, len(gates))
	if p.q.Aggregate != query.Count {
		b2 := newBatcher(2 * len(queries) * nk)
		for qi, q := range queries {
			for ki := 0; ki < nk; ki++ {
				i := qi*nk + ki
				if !live[i] {
					continue
				}
				res, err := p.enqueueAggregate(b2, p.count, bindings[i], q.Disjunction)
				if err != nil {
					return nil, err
				}
				aggs[i] = res
			}
		}
		if err := b2.run(ctx, p.eng); err != nil {
			return nil, err
		}
	}
	out := make([]AQPResult, len(queries))
	for qi := range queries {
		var groups []AQPGroup
		for ki := 0; ki < nk; ki++ {
			i := qi*nk + ki
			if !live[i] {
				continue
			}
			est := counts[i]
			if aggs[i] != nil {
				var err error
				est, err = aggs[i]()
				if err != nil {
					return nil, batchEntryErr(len(queries), qi, err)
				}
			}
			groups = append(groups, finish(groupKeyAt(p.groupVals, ki, nil), est, level))
		}
		sort.Slice(groups, func(i, j int) bool {
			a, b := groups[i].Key, groups[j].Key
			for k := 0; k < len(a) && k < len(b); k++ {
				if a[k] != b[k] {
					return a[k] < b[k]
				}
			}
			return false
		})
		out[qi] = AQPResult{Groups: groups}
	}
	return out, nil
}

// EstimateCardinalityQuery is EstimateCardinality for a concrete query
// sharing the plan's shape. It touches only the cardinality terms, so it
// neither pays for nor fails on the Execute-side compilation.
func (p *Plan) EstimateCardinalityQuery(ctx context.Context, q query.Query) (Estimate, error) {
	if err := p.checkBound(q); err != nil {
		return Estimate{}, err
	}
	b := newBatcher(2)
	res, err := p.enqueueCount(b, p.card, q.Filters, q.Disjunction)
	if err != nil {
		return Estimate{}, err
	}
	if err := b.run(ctx, p.eng); err != nil {
		return Estimate{}, err
	}
	return res()
}
