package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/query"
	"repro/internal/rspn"
)

// AQPGroup is one approximate result row: a group key (empty for ungrouped
// queries), the estimate, and its confidence interval.
type AQPGroup struct {
	Key      []float64
	Estimate Estimate
	// CILow and CIHigh bound the estimate at the execution's confidence
	// level (Section 5.1).
	CILow, CIHigh float64
}

// AQPResult is the approximate answer to a query.
type AQPResult struct {
	Groups []AQPGroup
}

// ToResult converts to the plain query.Result shape for error metrics.
func (r AQPResult) ToResult() query.Result {
	out := query.Result{}
	for _, g := range r.Groups {
		out.Groups = append(out.Groups, query.Group{Key: g.Key, Value: g.Estimate.Value})
	}
	return out
}

// Execute answers an aggregate query approximately (the AQP task of
// Section 6.2). Group-by queries are expanded into one estimate per group,
// where the groups are enumerated from the models' leaves — no data access
// happens at query time.
func (e *Engine) Execute(q query.Query) (AQPResult, error) {
	return e.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute with cancellation, checked between sub-
// estimates. With Parallelism > 1 the groups of a GROUP BY query are
// estimated concurrently (the query path is read-only, so this is safe).
// It compiles a plan and executes it once; hold on to Compile's plan to
// amortize compilation per query shape.
func (e *Engine) ExecuteContext(ctx context.Context, q query.Query) (AQPResult, error) {
	p, err := e.Compile(q)
	if err != nil {
		return AQPResult{}, err
	}
	return p.ExecuteQuery(ctx, ExecOpts{}, q)
}

func groupFilters(cols []string, key []float64) []query.Predicate {
	out := make([]query.Predicate, len(cols))
	for i, c := range cols {
		out[i] = query.Predicate{Column: c, Op: query.Eq, Value: key[i]}
	}
	return out
}

// maxMaterializedGroups bounds the group count of the materializing
// execution paths (Execute/ExecuteBatch build one binding per group up
// front). The streaming iterator (ExecuteGroupsIter) has no such bound:
// it enumerates keys lazily and holds one chunk at a time.
const maxMaterializedGroups = 100000

// maxEnumerableGroups is the sanity bound on the group-by cartesian
// product itself — beyond it even lazy enumeration is useless, and the
// product risks integer overflow.
const maxEnumerableGroups = 1 << 40

// groupColValues returns, per group-by column, the sorted distinct values
// as stored in the models' leaves — the per-axis factors of the group-key
// cartesian product.
func (e *Engine) groupColValues(q query.Query) ([][]float64, error) {
	perCol := make([][]float64, len(q.GroupBy))
	for i, col := range q.GroupBy {
		vals, err := e.columnValues(col)
		if err != nil {
			return nil, err
		}
		if len(vals) == 0 {
			return nil, fmt.Errorf("core: no model values for group-by column %s", col)
		}
		sort.Float64s(vals)
		perCol[i] = vals
	}
	return perCol, nil
}

// groupKeyCount returns the size of the cartesian product.
func groupKeyCount(perCol [][]float64) (int, error) {
	total := 1
	for _, vals := range perCol {
		total *= len(vals)
		if total > maxEnumerableGroups {
			return 0, fmt.Errorf("core: group-by produces more than %d groups", maxEnumerableGroups)
		}
	}
	return total, nil
}

// groupKeyAt decodes key number ki of the cartesian product in
// lexicographic order (the last column varies fastest — exactly the order
// the former eager enumeration produced), appending into buf.
func groupKeyAt(perCol [][]float64, ki int, buf []float64) []float64 {
	n := len(perCol)
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	for c := n - 1; c >= 0; c-- {
		vals := perCol[c]
		buf[c] = vals[ki%len(vals)]
		ki /= len(vals)
	}
	return buf
}

// columnValues returns the distinct values of a column from the first model
// that learned it.
func (e *Engine) columnValues(col string) ([]float64, error) {
	for _, r := range e.Ens.RSPNs {
		if idx := r.Model.ColumnIndex(col); idx >= 0 {
			return r.Model.LeafValues(idx), nil
		}
		// FD-dependent column: enumerate the dictionary's dependent values.
		for _, fd := range r.FDs {
			if fd.Dependent == col {
				var out []float64
				for v := range fd.Inverse {
					out = append(out, v)
				}
				sort.Float64s(out)
				return out, nil
			}
		}
	}
	return nil, fmt.Errorf("core: column %s not in any model", col)
}

// pickForAggregate chooses the RSPN for an AVG/SUM: it must resolve the
// aggregate column; among those, prefer the one with the strongest RDC
// coupling between the aggregate column and the resolvable filters
// (Section 4.2), falling back to overall filter coverage.
func (e *Engine) pickForAggregate(q query.Query) (*rspn.RSPN, error) {
	var best *rspn.RSPN
	bestScore := math.Inf(-1)
	for _, r := range e.Ens.RSPNs {
		if !r.HasColumn(q.AggColumn) {
			continue
		}
		overlap := e.connectedCovered(q.Tables, r)
		if len(overlap) == 0 {
			continue
		}
		score := float64(len(overlap))
		for _, f := range q.Filters {
			if r.ResolvesColumn(f.Column) {
				score += e.Ens.AttrRDC[attrKey(q.AggColumn, f.Column)] + 0.01
			}
		}
		if score > bestScore {
			best, bestScore = r, score
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: no RSPN resolves aggregate column %s", q.AggColumn)
	}
	return best, nil
}

func attrKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}
