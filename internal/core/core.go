package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/rspn"
	"repro/internal/spn"
)

// AQPGroup is one approximate result row: a group key (empty for ungrouped
// queries), the estimate, and its confidence interval.
type AQPGroup struct {
	Key      []float64
	Estimate Estimate
	// CILow and CIHigh bound the estimate at the engine's confidence
	// level (Section 5.1).
	CILow, CIHigh float64
}

// AQPResult is the approximate answer to a query.
type AQPResult struct {
	Groups []AQPGroup
}

// ToResult converts to the plain query.Result shape for error metrics.
func (r AQPResult) ToResult() query.Result {
	out := query.Result{}
	for _, g := range r.Groups {
		out.Groups = append(out.Groups, query.Group{Key: g.Key, Value: g.Estimate.Value})
	}
	return out
}

// Execute answers an aggregate query approximately (the AQP task of
// Section 6.2). Group-by queries are expanded into one estimate per group,
// where the groups are enumerated from the models' leaves — no data access
// happens at query time.
func (e *Engine) Execute(q query.Query) (AQPResult, error) {
	return e.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute with cancellation, checked between per-group
// estimates. With Parallelism > 1 the groups of a GROUP BY query are
// estimated concurrently (the query path is read-only, so this is safe).
func (e *Engine) ExecuteContext(ctx context.Context, q query.Query) (AQPResult, error) {
	if err := e.validateQuery(q); err != nil {
		return AQPResult{}, err
	}
	if len(q.GroupBy) == 0 {
		est, err := e.estimateAggregate(ctx, q)
		if err != nil {
			return AQPResult{}, err
		}
		return AQPResult{Groups: []AQPGroup{e.finish(nil, est)}}, nil
	}
	keys, err := e.groupKeys(q)
	if err != nil {
		return AQPResult{}, err
	}
	groups, err := e.estimateGroups(ctx, q, keys)
	if err != nil {
		return AQPResult{}, err
	}
	out := AQPResult{Groups: groups}
	sort.Slice(out.Groups, func(i, j int) bool {
		a, b := out.Groups[i].Key, out.Groups[j].Key
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out, nil
}

// estimateGroup answers one group of a GROUP BY query: nil when the model
// believes the group is empty.
func (e *Engine) estimateGroup(ctx context.Context, q query.Query, key []float64) (*AQPGroup, error) {
	gq := q
	gq.GroupBy = nil
	gq.Filters = append(append([]query.Predicate(nil), q.Filters...), groupFilters(q.GroupBy, key)...)
	var cnt Estimate
	var err error
	if len(gq.Disjunction) > 0 {
		cnt, err = e.estimateDisjunctiveCount(ctx, gq)
	} else {
		cnt, err = e.estimateCount(ctx, gq.Tables, gq.Filters, e.effectiveOuter(gq))
	}
	if err != nil {
		return nil, err
	}
	if cnt.Value < 0.5 {
		return nil, nil
	}
	est := cnt
	if q.Aggregate != query.Count {
		est, err = e.estimateAggregate(ctx, gq)
		if err != nil {
			return nil, err
		}
	}
	g := e.finish(key, est)
	return &g, nil
}

// estimateGroups fans the per-group estimates over up to Parallelism
// workers, preserving key order in the result.
func (e *Engine) estimateGroups(ctx context.Context, q query.Query, keys [][]float64) ([]AQPGroup, error) {
	results := make([]*AQPGroup, len(keys))
	err := parallel.ForEach(len(keys), e.Parallelism, func(i int) error {
		g, err := e.estimateGroup(ctx, q, keys[i])
		if err != nil {
			return err
		}
		results[i] = g
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []AQPGroup
	for _, g := range results {
		if g != nil {
			out = append(out, *g)
		}
	}
	return out, nil
}

func (e *Engine) finish(key []float64, est Estimate) AQPGroup {
	level := e.ConfidenceLevel
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	lo, hi := est.ConfidenceInterval(level)
	return AQPGroup{Key: key, Estimate: est, CILow: lo, CIHigh: hi}
}

func groupFilters(cols []string, key []float64) []query.Predicate {
	out := make([]query.Predicate, len(cols))
	for i, c := range cols {
		out[i] = query.Predicate{Column: c, Op: query.Eq, Value: key[i]}
	}
	return out
}

// groupKeys enumerates the cartesian product of the distinct values of the
// group-by columns as stored in the models' leaves.
func (e *Engine) groupKeys(q query.Query) ([][]float64, error) {
	const maxGroups = 100000
	perCol := make([][]float64, len(q.GroupBy))
	for i, col := range q.GroupBy {
		vals, err := e.columnValues(col)
		if err != nil {
			return nil, err
		}
		if len(vals) == 0 {
			return nil, fmt.Errorf("core: no model values for group-by column %s", col)
		}
		sort.Float64s(vals)
		perCol[i] = vals
	}
	total := 1
	for _, vals := range perCol {
		total *= len(vals)
		if total > maxGroups {
			return nil, fmt.Errorf("core: group-by produces more than %d groups", maxGroups)
		}
	}
	keys := [][]float64{{}}
	for _, vals := range perCol {
		var next [][]float64
		for _, k := range keys {
			for _, v := range vals {
				next = append(next, append(append([]float64(nil), k...), v))
			}
		}
		keys = next
	}
	return keys, nil
}

// columnValues returns the distinct values of a column from the first model
// that learned it.
func (e *Engine) columnValues(col string) ([]float64, error) {
	for _, r := range e.Ens.RSPNs {
		if idx := r.Model.ColumnIndex(col); idx >= 0 {
			return r.Model.LeafValues(idx), nil
		}
		// FD-dependent column: enumerate the dictionary's dependent values.
		for _, fd := range r.FDs {
			if fd.Dependent == col {
				var out []float64
				for v := range fd.Inverse {
					out = append(out, v)
				}
				return out, nil
			}
		}
	}
	return nil, fmt.Errorf("core: column %s not in any model", col)
}

// estimateAggregate answers an ungrouped COUNT/SUM/AVG. The up-front ctx
// check covers the aggregate paths that never reach ctx-aware
// estimateCount (AVG, and SUM answered by a covering RSPN).
func (e *Engine) estimateAggregate(ctx context.Context, q query.Query) (Estimate, error) {
	if err := ctx.Err(); err != nil {
		return Estimate{}, err
	}
	if len(q.Disjunction) > 0 {
		return e.estimateDisjunctiveAggregate(ctx, q)
	}
	switch q.Aggregate {
	case query.Count:
		return e.estimateCount(ctx, q.Tables, q.Filters, e.effectiveOuter(q))
	case query.Avg:
		return e.estimateAvg(q)
	case query.Sum:
		return e.estimateSum(ctx, q)
	default:
		return Estimate{}, fmt.Errorf("core: unsupported aggregate %v", q.Aggregate)
	}
}

// pickForAggregate chooses the RSPN for an AVG/SUM: it must resolve the
// aggregate column; among those, prefer the one with the strongest RDC
// coupling between the aggregate column and the resolvable filters
// (Section 4.2), falling back to overall filter coverage.
func (e *Engine) pickForAggregate(q query.Query) (*rspn.RSPN, error) {
	var best *rspn.RSPN
	bestScore := math.Inf(-1)
	for _, r := range e.Ens.RSPNs {
		if !r.HasColumn(q.AggColumn) {
			continue
		}
		overlap := e.connectedCovered(q.Tables, r)
		if len(overlap) == 0 {
			continue
		}
		score := float64(len(overlap))
		for _, f := range q.Filters {
			if r.ResolvesColumn(f.Column) {
				score += e.Ens.AttrRDC[attrKey(q.AggColumn, f.Column)] + 0.01
			}
		}
		if score > bestScore {
			best, bestScore = r, score
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: no RSPN resolves aggregate column %s", q.AggColumn)
	}
	return best, nil
}

func subtractStrings(a, b []string) []string { return subtract(a, b) }

func attrKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// avgTerms builds the numerator and denominator terms of the normalized
// conditional expectation of Section 4.2:
//
//	AVG = E(A/F' * 1_C * N) / E(1/F' * 1_C * N * 1(A not null))
//
// restricted to the filters the chosen RSPN can resolve (the paper drops
// the rest, accepting an approximation).
func (e *Engine) avgTerms(r *rspn.RSPN, q query.Query) (num, den rspn.Term) {
	var kept []query.Predicate
	for _, f := range q.Filters {
		if r.ResolvesColumn(f.Column) {
			kept = append(kept, f)
		}
	}
	inner := intersect(subtractStrings(q.Tables, e.effectiveOuter(q)), r.Tables)
	fns := map[string]spn.Fn{}
	for _, c := range r.InverseFactorColumns(q.Tables) {
		fns[c] = spn.FnInv
	}
	numFns := map[string]spn.Fn{q.AggColumn: spn.FnIdent}
	denFns := map[string]spn.Fn{}
	for c, fn := range fns {
		numFns[c] = fn
		denFns[c] = fn
	}
	num = rspn.Term{Fns: numFns, Filters: kept, InnerTables: inner}
	den = rspn.Term{Fns: denFns, Filters: kept, InnerTables: inner, NotNull: []string{q.AggColumn}}
	return num, den
}

// estimateAvg evaluates an AVG query as a ratio of expectations.
func (e *Engine) estimateAvg(q query.Query) (Estimate, error) {
	r, err := e.pickForAggregate(q)
	if err != nil {
		return Estimate{}, err
	}
	numTerm, denTerm := e.avgTerms(r, q)
	numV, err := r.Expectation(numTerm)
	if err != nil {
		return Estimate{}, err
	}
	denV, err := r.Expectation(denTerm)
	if err != nil {
		return Estimate{}, err
	}
	if denV <= 0 {
		return Estimate{}, nil
	}
	numVar, err := e.termVariance(r, numTerm, numV)
	if err != nil {
		return Estimate{}, err
	}
	denVar, err := e.termVariance(r, denTerm, denV)
	if err != nil {
		return Estimate{}, err
	}
	return divEstimate(Estimate{Value: numV, Variance: numVar}, Estimate{Value: denV, Variance: denVar}), nil
}

// estimateSum evaluates SUM. With an RSPN covering all query tables the
// sum is a single expectation |J| * E(A/F' * 1_C * N); otherwise it is
// COUNT * AVG as in Section 4.2, with product-variance combination.
func (e *Engine) estimateSum(ctx context.Context, q query.Query) (Estimate, error) {
	if covering := e.Ens.Covering(q.Tables); len(covering) > 0 {
		for _, r := range covering {
			if !r.HasColumn(q.AggColumn) {
				continue
			}
			numTerm, _ := e.avgTerms(r, q)
			if len(numTerm.Filters) != len(q.Filters) {
				continue // cannot resolve all filters; try another member
			}
			v, err := r.Expectation(numTerm)
			if err != nil {
				return Estimate{}, err
			}
			variance, err := e.termVariance(r, numTerm, v)
			if err != nil {
				return Estimate{}, err
			}
			return scaleEstimate(Estimate{Value: v, Variance: variance}, r.FullSize), nil
		}
	}
	// COUNT * AVG fallback. The count must range over rows with a non-NULL
	// aggregate column to match SQL SUM semantics; the AVG denominator
	// already does, so the product is consistent up to NULL skew.
	cnt, err := e.estimateCount(ctx, q.Tables, q.Filters, e.effectiveOuter(q))
	if err != nil {
		return Estimate{}, err
	}
	avg, err := e.estimateAvg(q)
	if err != nil {
		return Estimate{}, err
	}
	return mulEstimate(cnt, avg), nil
}
