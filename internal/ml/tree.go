// Package ml provides the machine-learning components of the reproduction:
// a CART regression tree and a multilayer perceptron trained with
// backpropagation (the Figure 13 baselines, normally sklearn/TensorFlow),
// plus RSPN-backed regression and classification (Section 4.3), which need
// no training beyond the ensemble itself.
package ml

import (
	"fmt"
	"math"
	"sort"
)

// TreeConfig controls CART regression-tree learning.
type TreeConfig struct {
	MaxDepth    int
	MinLeafSize int
	// MaxSplitCandidates caps the candidate thresholds tested per feature
	// (quantile-spaced), bounding fit time on continuous features.
	MaxSplitCandidates int
}

// DefaultTreeConfig mirrors common library defaults.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 12, MinLeafSize: 5, MaxSplitCandidates: 32}
}

// RegressionTree is a fitted CART model predicting a continuous target.
type RegressionTree struct {
	root *treeNode
	cfg  TreeConfig
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	value     float64 // leaf prediction
	leaf      bool
}

// FitTree learns a regression tree on rows x features data. NaN feature
// values are routed to the left child at both fit and predict time.
func FitTree(features [][]float64, target []float64, cfg TreeConfig) (*RegressionTree, error) {
	if len(features) == 0 || len(features) != len(target) {
		return nil, fmt.Errorf("ml: bad training shape %d x, %d y", len(features), len(target))
	}
	if cfg.MaxDepth <= 0 {
		cfg = DefaultTreeConfig()
	}
	idx := make([]int, len(features))
	for i := range idx {
		idx[i] = i
	}
	t := &RegressionTree{cfg: cfg}
	t.root = t.grow(features, target, idx, 0)
	return t, nil
}

func (t *RegressionTree) grow(xs [][]float64, ys []float64, idx []int, depth int) *treeNode {
	mean, variance := meanVar(ys, idx)
	if depth >= t.cfg.MaxDepth || len(idx) < 2*t.cfg.MinLeafSize || variance == 0 {
		return &treeNode{leaf: true, value: mean}
	}
	bestFeat, bestThr, bestGain := -1, 0.0, 0.0
	nFeat := len(xs[0])
	for f := 0; f < nFeat; f++ {
		thr, gain := t.bestSplit(xs, ys, idx, f, variance)
		if gain > bestGain {
			bestFeat, bestThr, bestGain = f, thr, gain
		}
	}
	if bestFeat < 0 {
		return &treeNode{leaf: true, value: mean}
	}
	var left, right []int
	for _, i := range idx {
		v := xs[i][bestFeat]
		if math.IsNaN(v) || v <= bestThr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.cfg.MinLeafSize || len(right) < t.cfg.MinLeafSize {
		return &treeNode{leaf: true, value: mean}
	}
	return &treeNode{
		feature:   bestFeat,
		threshold: bestThr,
		left:      t.grow(xs, ys, left, depth+1),
		right:     t.grow(xs, ys, right, depth+1),
	}
}

// bestSplit scans quantile-spaced thresholds of one feature and returns the
// threshold with the highest variance reduction.
func (t *RegressionTree) bestSplit(xs [][]float64, ys []float64, idx []int, feat int, parentVar float64) (float64, float64) {
	vals := make([]float64, 0, len(idx))
	for _, i := range idx {
		if v := xs[i][feat]; !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	if len(vals) < 2 {
		return 0, 0
	}
	sort.Float64s(vals)
	cands := t.cfg.MaxSplitCandidates
	if cands <= 0 {
		cands = 32
	}
	seen := map[float64]bool{}
	bestThr, bestGain := 0.0, 0.0
	for c := 1; c <= cands; c++ {
		pos := len(vals) * c / (cands + 1)
		if pos >= len(vals) {
			break
		}
		thr := vals[pos]
		if seen[thr] {
			continue
		}
		seen[thr] = true
		var sumL, sumR, sqL, sqR float64
		var nL, nR int
		for _, i := range idx {
			v := xs[i][feat]
			y := ys[i]
			if math.IsNaN(v) || v <= thr {
				sumL += y
				sqL += y * y
				nL++
			} else {
				sumR += y
				sqR += y * y
				nR++
			}
		}
		if nL == 0 || nR == 0 {
			continue
		}
		varL := sqL/float64(nL) - (sumL/float64(nL))*(sumL/float64(nL))
		varR := sqR/float64(nR) - (sumR/float64(nR))*(sumR/float64(nR))
		n := float64(nL + nR)
		gain := parentVar - (float64(nL)/n*varL + float64(nR)/n*varR)
		if gain > bestGain {
			bestThr, bestGain = thr, gain
		}
	}
	return bestThr, bestGain
}

func meanVar(ys []float64, idx []int) (float64, float64) {
	if len(idx) == 0 {
		return 0, 0
	}
	var sum, sq float64
	for _, i := range idx {
		sum += ys[i]
		sq += ys[i] * ys[i]
	}
	n := float64(len(idx))
	mean := sum / n
	v := sq/n - mean*mean
	if v < 0 {
		v = 0
	}
	return mean, v
}

// Predict returns the tree's estimate for one feature vector.
func (t *RegressionTree) Predict(x []float64) float64 {
	n := t.root
	for !n.leaf {
		v := x[n.feature]
		if math.IsNaN(v) || v <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the fitted tree's depth.
func (t *RegressionTree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.leaf {
		return 1
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// RMSE computes the root mean squared error of predictions against truth.
func RMSE(pred, truth []float64) float64 {
	if len(pred) == 0 || len(pred) != len(truth) {
		return math.NaN()
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}
