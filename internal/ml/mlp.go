package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// MLPConfig configures the multilayer perceptron.
type MLPConfig struct {
	Hidden       []int // hidden layer widths
	LearningRate float64
	Epochs       int
	BatchSize    int
	Seed         int64
	// L2 is the weight-decay coefficient.
	L2 float64
}

// DefaultMLPConfig is a small ReLU network comparable to the Figure 13
// baseline and the MCSN estimator's trunk.
func DefaultMLPConfig() MLPConfig {
	return MLPConfig{Hidden: []int{64, 64}, LearningRate: 1e-3, Epochs: 30, BatchSize: 32, Seed: 1}
}

// MLP is a fully-connected ReLU network with a linear output unit, trained
// with mini-batch Adam on mean squared error. Inputs and the target are
// standardized internally so callers can pass raw feature scales.
type MLP struct {
	cfg    MLPConfig
	w      [][][]float64 // [layer][out][in]
	b      [][]float64   // [layer][out]
	xMean  []float64
	xStd   []float64
	yMean  float64
	yStd   float64
	layers []int
}

// FitMLP trains the network. NaN features are imputed with the column mean.
func FitMLP(features [][]float64, target []float64, cfg MLPConfig) (*MLP, error) {
	if len(features) == 0 || len(features) != len(target) {
		return nil, fmt.Errorf("ml: bad training shape %d x, %d y", len(features), len(target))
	}
	if len(cfg.Hidden) == 0 {
		cfg = DefaultMLPConfig()
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	nIn := len(features[0])
	m := &MLP{cfg: cfg}
	m.layers = append([]int{nIn}, cfg.Hidden...)
	m.layers = append(m.layers, 1)
	m.standardize(features, target)
	rng := rand.New(rand.NewSource(cfg.Seed))
	// He initialization.
	for l := 0; l < len(m.layers)-1; l++ {
		in, out := m.layers[l], m.layers[l+1]
		scale := math.Sqrt(2 / float64(in))
		wl := make([][]float64, out)
		for o := range wl {
			wl[o] = make([]float64, in)
			for i := range wl[o] {
				wl[o][i] = rng.NormFloat64() * scale
			}
		}
		m.w = append(m.w, wl)
		m.b = append(m.b, make([]float64, out))
	}
	m.train(features, target, rng)
	return m, nil
}

func (m *MLP) standardize(xs [][]float64, ys []float64) {
	nIn := len(xs[0])
	m.xMean = make([]float64, nIn)
	m.xStd = make([]float64, nIn)
	counts := make([]float64, nIn)
	for _, row := range xs {
		for j, v := range row {
			if !math.IsNaN(v) {
				m.xMean[j] += v
				counts[j]++
			}
		}
	}
	for j := range m.xMean {
		if counts[j] > 0 {
			m.xMean[j] /= counts[j]
		}
	}
	for _, row := range xs {
		for j, v := range row {
			if !math.IsNaN(v) {
				d := v - m.xMean[j]
				m.xStd[j] += d * d
			}
		}
	}
	for j := range m.xStd {
		if counts[j] > 1 {
			m.xStd[j] = math.Sqrt(m.xStd[j] / counts[j])
		}
		if m.xStd[j] == 0 {
			m.xStd[j] = 1
		}
	}
	for _, y := range ys {
		m.yMean += y
	}
	m.yMean /= float64(len(ys))
	for _, y := range ys {
		d := y - m.yMean
		m.yStd += d * d
	}
	m.yStd = math.Sqrt(m.yStd / float64(len(ys)))
	if m.yStd == 0 {
		m.yStd = 1
	}
}

func (m *MLP) normX(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		if math.IsNaN(v) {
			out[j] = 0 // mean-imputed
		} else {
			out[j] = (v - m.xMean[j]) / m.xStd[j]
		}
	}
	return out
}

// train runs mini-batch Adam.
func (m *MLP) train(xs [][]float64, ys []float64, rng *rand.Rand) {
	n := len(xs)
	// Adam state.
	mw, vw := zerosLike(m.w), zerosLike(m.w)
	mb, vb := zerosLikeB(m.b), zerosLikeB(m.b)
	beta1, beta2, eps := 0.9, 0.999, 1e-8
	step := 0
	order := rng.Perm(n)
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += m.cfg.BatchSize {
			end := start + m.cfg.BatchSize
			if end > n {
				end = n
			}
			gw, gb := zerosLike(m.w), zerosLikeB(m.b)
			for _, i := range order[start:end] {
				m.backprop(m.normX(xs[i]), (ys[i]-m.yMean)/m.yStd, gw, gb)
			}
			batch := float64(end - start)
			step++
			lr := m.cfg.LearningRate
			for l := range m.w {
				for o := range m.w[l] {
					for i := range m.w[l][o] {
						g := gw[l][o][i]/batch + m.cfg.L2*m.w[l][o][i]
						mw[l][o][i] = beta1*mw[l][o][i] + (1-beta1)*g
						vw[l][o][i] = beta2*vw[l][o][i] + (1-beta2)*g*g
						mHat := mw[l][o][i] / (1 - math.Pow(beta1, float64(step)))
						vHat := vw[l][o][i] / (1 - math.Pow(beta2, float64(step)))
						m.w[l][o][i] -= lr * mHat / (math.Sqrt(vHat) + eps)
					}
					g := gb[l][o] / batch
					mb[l][o] = beta1*mb[l][o] + (1-beta1)*g
					vb[l][o] = beta2*vb[l][o] + (1-beta2)*g*g
					mHat := mb[l][o] / (1 - math.Pow(beta1, float64(step)))
					vHat := vb[l][o] / (1 - math.Pow(beta2, float64(step)))
					m.b[l][o] -= lr * mHat / (math.Sqrt(vHat) + eps)
				}
			}
		}
	}
}

// backprop accumulates gradients for one standardized sample.
func (m *MLP) backprop(x []float64, y float64, gw [][][]float64, gb [][]float64) {
	nLayers := len(m.w)
	acts := make([][]float64, nLayers+1)
	acts[0] = x
	pre := make([][]float64, nLayers)
	for l := 0; l < nLayers; l++ {
		in := acts[l]
		out := make([]float64, len(m.w[l]))
		for o := range m.w[l] {
			s := m.b[l][o]
			for i, wv := range m.w[l][o] {
				s += wv * in[i]
			}
			out[o] = s
		}
		pre[l] = out
		if l < nLayers-1 {
			act := make([]float64, len(out))
			for i, v := range out {
				if v > 0 {
					act[i] = v
				}
			}
			acts[l+1] = act
		} else {
			acts[l+1] = out // linear output
		}
	}
	// MSE gradient at the output.
	delta := []float64{2 * (acts[nLayers][0] - y)}
	for l := nLayers - 1; l >= 0; l-- {
		in := acts[l]
		for o := range m.w[l] {
			gb[l][o] += delta[o]
			for i := range m.w[l][o] {
				gw[l][o][i] += delta[o] * in[i]
			}
		}
		if l == 0 {
			break
		}
		next := make([]float64, len(in))
		for i := range in {
			s := 0.0
			for o := range m.w[l] {
				s += m.w[l][o][i] * delta[o]
			}
			if pre[l-1][i] > 0 { // ReLU derivative
				next[i] = s
			}
		}
		delta = next
	}
}

// Predict returns the network's estimate for one raw feature vector.
func (m *MLP) Predict(x []float64) float64 {
	a := m.normX(x)
	for l := 0; l < len(m.w); l++ {
		out := make([]float64, len(m.w[l]))
		for o := range m.w[l] {
			s := m.b[l][o]
			for i, wv := range m.w[l][o] {
				s += wv * a[i]
			}
			if l < len(m.w)-1 && s < 0 {
				s = 0
			}
			out[o] = s
		}
		a = out
	}
	return a[0]*m.yStd + m.yMean
}

func zerosLike(w [][][]float64) [][][]float64 {
	out := make([][][]float64, len(w))
	for l := range w {
		out[l] = make([][]float64, len(w[l]))
		for o := range w[l] {
			out[l][o] = make([]float64, len(w[l][o]))
		}
	}
	return out
}

func zerosLikeB(b [][]float64) [][]float64 {
	out := make([][]float64, len(b))
	for l := range b {
		out[l] = make([]float64, len(b[l]))
	}
	return out
}
