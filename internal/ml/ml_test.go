package ml

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/rspn"
	"repro/internal/schema"
	"repro/internal/table"
)

// linearData generates y = 3*x0 - 2*x1 + noise.
func linearData(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x0 := rng.Float64() * 10
		x1 := rng.Float64() * 10
		xs[i] = []float64{x0, x1}
		ys[i] = 3*x0 - 2*x1 + rng.NormFloat64()*0.1
	}
	return xs, ys
}

// stepData generates a piecewise-constant target, ideal for trees.
func stepData(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := rng.Float64() * 10
		xs[i] = []float64{x}
		switch {
		case x < 3:
			ys[i] = 10
		case x < 7:
			ys[i] = 20
		default:
			ys[i] = 5
		}
	}
	return xs, ys
}

func TestTreeFitsStepFunction(t *testing.T) {
	xs, ys := stepData(2000, 1)
	tree, err := FitTree(xs, ys, DefaultTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{{1, 10}, {5, 20}, {9, 5}}
	for _, c := range cases {
		if got := tree.Predict([]float64{c.x}); math.Abs(got-c.want) > 1 {
			t.Errorf("Predict(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if tree.Depth() < 2 {
		t.Fatal("tree did not split")
	}
}

func TestTreeRMSEBeatsMeanPredictor(t *testing.T) {
	xs, ys := linearData(2000, 2)
	tree, err := FitTree(xs, ys, DefaultTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := linearData(500, 3)
	preds := make([]float64, len(testX))
	for i, x := range testX {
		preds[i] = tree.Predict(x)
	}
	rmse := RMSE(preds, testY)
	// Mean predictor RMSE is the target's std dev (~10.4 for this data).
	if rmse > 5 {
		t.Fatalf("tree RMSE %v too high", rmse)
	}
}

func TestTreeHandlesNaNFeatures(t *testing.T) {
	xs, ys := stepData(500, 4)
	xs[0][0] = math.NaN()
	tree, err := FitTree(xs, ys, DefaultTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if v := tree.Predict([]float64{math.NaN()}); math.IsNaN(v) {
		t.Fatal("prediction on NaN feature should not be NaN")
	}
}

func TestTreeErrors(t *testing.T) {
	if _, err := FitTree(nil, nil, DefaultTreeConfig()); err == nil {
		t.Fatal("expected error for empty data")
	}
	if _, err := FitTree([][]float64{{1}}, []float64{1, 2}, DefaultTreeConfig()); err == nil {
		t.Fatal("expected error for shape mismatch")
	}
}

func TestMLPFitsLinear(t *testing.T) {
	xs, ys := linearData(2000, 5)
	cfg := DefaultMLPConfig()
	cfg.Epochs = 40
	mlp, err := FitMLP(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := linearData(500, 6)
	preds := make([]float64, len(testX))
	for i, x := range testX {
		preds[i] = mlp.Predict(x)
	}
	rmse := RMSE(preds, testY)
	if rmse > 2 {
		t.Fatalf("MLP RMSE %v too high for a linear target", rmse)
	}
}

func TestMLPDeterministic(t *testing.T) {
	xs, ys := linearData(300, 7)
	cfg := DefaultMLPConfig()
	cfg.Epochs = 5
	a, err := FitMLP(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitMLP(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{5, 5}
	if a.Predict(x) != b.Predict(x) {
		t.Fatal("same seed must give identical models")
	}
}

func TestMLPHandlesNaN(t *testing.T) {
	xs, ys := linearData(300, 8)
	xs[10][1] = math.NaN()
	cfg := DefaultMLPConfig()
	cfg.Epochs = 3
	mlp, err := FitMLP(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v := mlp.Predict([]float64{math.NaN(), 1}); math.IsNaN(v) {
		t.Fatal("NaN leak through mean imputation")
	}
}

func TestRMSE(t *testing.T) {
	if v := RMSE([]float64{1, 2}, []float64{1, 2}); v != 0 {
		t.Fatalf("RMSE identical = %v", v)
	}
	if v := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(v-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE = %v", v)
	}
	if !math.IsNaN(RMSE(nil, nil)) {
		t.Fatal("empty RMSE should be NaN")
	}
}

// rspnFixture learns an RSPN over data where y depends on categorical c.
func rspnFixture(t *testing.T) *rspn.RSPN {
	t.Helper()
	meta := &schema.Table{Name: "t", Columns: []schema.Column{
		{Name: "c", Kind: schema.IntKind},
		{Name: "y", Kind: schema.FloatKind},
	}}
	tb := table.New(meta)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 4000; i++ {
		c := float64(rng.Intn(3))
		y := c*100 + rng.NormFloat64()*5
		tb.AppendRow(table.Float(c), table.Float(y))
	}
	opts := rspn.DefaultLearnOptions()
	opts.SPN.MinInstanceFrac = 0.05
	r, err := rspn.Learn(context.Background(), tb, []string{"t"}, nil, []string{"c", "y"}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRSPNRegressor(t *testing.T) {
	r := rspnFixture(t)
	reg, err := NewRSPNRegressor(r, "y", []string{"c"})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0.0; c < 3; c++ {
		got, err := reg.Predict([]float64{c})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c*100) > 15 {
			t.Errorf("E(y | c=%v) = %v, want ~%v", c, got, c*100)
		}
	}
	// Unconstrained (NaN feature): prediction near the global mean 100.
	got, err := reg.Predict([]float64{math.NaN()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100) > 20 {
		t.Errorf("unconditional prediction = %v, want ~100", got)
	}
}

func TestRSPNRegressorZeroProbabilityEvidence(t *testing.T) {
	r := rspnFixture(t)
	reg, err := NewRSPNRegressor(r, "y", []string{"c"})
	if err != nil {
		t.Fatal(err)
	}
	// c = 99 never occurs: fall back to the unconditional mean, not 0.
	got, err := reg.Predict([]float64{99})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100) > 25 {
		t.Errorf("zero-evidence prediction = %v, want ~100", got)
	}
}

func TestRSPNClassifier(t *testing.T) {
	r := rspnFixture(t)
	clf, err := NewRSPNClassifier(r, "c", []string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ y, want float64 }{{0, 0}, {100, 1}, {200, 2}}
	for _, cse := range cases {
		got, err := clf.Predict([]float64{cse.y})
		if err != nil {
			t.Fatal(err)
		}
		if got != cse.want {
			t.Errorf("classify(y=%v) = %v, want %v", cse.y, got, cse.want)
		}
	}
	// Accuracy over a labelled sample should be high.
	var feats [][]float64
	var labels []float64
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 200; i++ {
		c := float64(rng.Intn(3))
		feats = append(feats, []float64{c*100 + rng.NormFloat64()*5})
		labels = append(labels, c)
	}
	acc, err := clf.Accuracy(feats, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("accuracy %v too low", acc)
	}
}

func TestRSPNRegressorErrors(t *testing.T) {
	r := rspnFixture(t)
	if _, err := NewRSPNRegressor(r, "nope", []string{"c"}); err == nil {
		t.Fatal("expected unknown target error")
	}
	if _, err := NewRSPNRegressor(r, "y", []string{"nope"}); err == nil {
		t.Fatal("expected unknown feature error")
	}
	reg, err := NewRSPNRegressor(r, "y", []string{"c"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Predict([]float64{1, 2}); err == nil {
		t.Fatal("expected feature-count error")
	}
}
