package ml

import (
	"fmt"
	"math"

	"repro/internal/rspn"
	"repro/internal/spn"
)

// RSPNRegressor answers regression tasks directly from an RSPN (Section
// 4.3): the prediction for a target column given feature values is the
// conditional expectation E(target | features). No additional training
// happens — the "model" is the ensemble member itself.
type RSPNRegressor struct {
	R        *rspn.RSPN
	Target   string
	Features []string
	// Tolerance widens point evidence on continuous features to a
	// relative fraction of the feature's domain, so binned leaves retain
	// probability mass around the conditioning value. 0 picks 2%.
	Tolerance float64

	targetIdx  int
	featureIdx []int
	domainLo   []float64
	domainHi   []float64
}

// NewRSPNRegressor prepares a regressor for the target column using the
// given feature columns, all of which must be learned by the RSPN.
func NewRSPNRegressor(r *rspn.RSPN, target string, features []string) (*RSPNRegressor, error) {
	reg := &RSPNRegressor{R: r, Target: target, Features: features, Tolerance: 0.02}
	reg.targetIdx = r.Model.ColumnIndex(target)
	if reg.targetIdx < 0 {
		return nil, fmt.Errorf("ml: target column %s not in model", target)
	}
	for _, f := range features {
		idx := r.Model.ColumnIndex(f)
		if idx < 0 {
			return nil, fmt.Errorf("ml: feature column %s not in model", f)
		}
		reg.featureIdx = append(reg.featureIdx, idx)
		vals := r.Model.LeafValues(idx)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if math.IsInf(lo, 1) {
			lo, hi = 0, 1
		}
		reg.domainLo = append(reg.domainLo, lo)
		reg.domainHi = append(reg.domainHi, hi)
	}
	return reg, nil
}

// evidence builds the conditioning ranges for one feature vector; NaN
// features are left unconstrained.
func (reg *RSPNRegressor) evidence(x []float64) []spn.ColQuery {
	tol := reg.Tolerance
	if tol <= 0 {
		tol = 0.02
	}
	var out []spn.ColQuery
	for i, idx := range reg.featureIdx {
		v := x[i]
		if math.IsNaN(v) {
			continue
		}
		w := (reg.domainHi[i] - reg.domainLo[i]) * tol / 2
		out = append(out, spn.ColQuery{Col: idx, Fn: spn.FnOne,
			Ranges: []spn.Range{{Lo: v - w, Hi: v + w, LoIncl: true, HiIncl: true}}})
	}
	return out
}

// Predict returns E(target | features ~= x). When the evidence has zero
// probability under the model the unconditional mean is returned.
func (reg *RSPNRegressor) Predict(x []float64) (float64, error) {
	if len(x) != len(reg.featureIdx) {
		return 0, fmt.Errorf("ml: got %d features, want %d", len(x), len(reg.featureIdx))
	}
	ev := reg.evidence(x)
	num, err := reg.R.Model.Evaluate(spn.Request{Cols: append(append([]spn.ColQuery(nil), ev...),
		spn.ColQuery{Col: reg.targetIdx, Fn: spn.FnIdent})})
	if err != nil {
		return 0, err
	}
	den, err := reg.R.Model.Evaluate(spn.Request{Cols: append(append([]spn.ColQuery(nil), ev...),
		spn.ColQuery{Col: reg.targetIdx, Fn: spn.FnOne, ExcludeNull: true})})
	if err != nil {
		return 0, err
	}
	if den <= 0 {
		// Zero-probability evidence: fall back to the unconditional mean.
		num, err = reg.R.Model.Evaluate(spn.Request{Cols: []spn.ColQuery{{Col: reg.targetIdx, Fn: spn.FnIdent}}})
		if err != nil {
			return 0, err
		}
		den, err = reg.R.Model.Evaluate(spn.Request{Cols: []spn.ColQuery{{Col: reg.targetIdx, Fn: spn.FnOne, ExcludeNull: true}}})
		if err != nil {
			return 0, err
		}
		if den <= 0 {
			return 0, nil
		}
	}
	return num / den, nil
}

// RSPNClassifier answers classification tasks via most-probable-explanation
// over the target column (Section 4.3).
type RSPNClassifier struct {
	reg        *RSPNRegressor
	candidates []float64
}

// NewRSPNClassifier prepares a classifier; candidate classes are taken from
// the model's leaves.
func NewRSPNClassifier(r *rspn.RSPN, target string, features []string) (*RSPNClassifier, error) {
	reg, err := NewRSPNRegressor(r, target, features)
	if err != nil {
		return nil, err
	}
	cands := r.Model.LeafValues(reg.targetIdx)
	if len(cands) == 0 {
		return nil, fmt.Errorf("ml: target column %s has no values", target)
	}
	return &RSPNClassifier{reg: reg, candidates: cands}, nil
}

// Predict returns the most probable class for the feature vector.
func (c *RSPNClassifier) Predict(x []float64) (float64, error) {
	if len(x) != len(c.reg.featureIdx) {
		return 0, fmt.Errorf("ml: got %d features, want %d", len(x), len(c.reg.featureIdx))
	}
	return c.reg.R.Model.MostProbableValue(c.reg.targetIdx, c.candidates, c.reg.evidence(x))
}

// Accuracy computes classification accuracy over a labelled set.
func (c *RSPNClassifier) Accuracy(features [][]float64, labels []float64) (float64, error) {
	if len(features) == 0 {
		return 0, fmt.Errorf("ml: empty evaluation set")
	}
	hits := 0
	for i, x := range features {
		p, err := c.Predict(x)
		if err != nil {
			return 0, err
		}
		if p == labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(features)), nil
}
