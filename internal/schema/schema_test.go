package schema

import "testing"

func starSchema() *Schema {
	fk := func(col string) []ForeignKey {
		return []ForeignKey{{Column: col, RefTable: "fact", RefColumn: "f_id"}}
	}
	return &Schema{Tables: []*Table{
		{Name: "fact", PrimaryKey: "f_id", Columns: []Column{{Name: "f_id", Kind: IntKind}}},
		{Name: "a", PrimaryKey: "a_id", ForeignKeys: fk("a_f"), Columns: []Column{
			{Name: "a_id", Kind: IntKind}, {Name: "a_f", Kind: IntKind}}},
		{Name: "b", PrimaryKey: "b_id", ForeignKeys: fk("b_f"), Columns: []Column{
			{Name: "b_id", Kind: IntKind}, {Name: "b_f", Kind: IntKind}}},
	}}
}

func chain() *Schema {
	return &Schema{Tables: []*Table{
		{Name: "x", PrimaryKey: "x_id", Columns: []Column{{Name: "x_id", Kind: IntKind}}},
		{Name: "y", PrimaryKey: "y_id", Columns: []Column{
			{Name: "y_id", Kind: IntKind}, {Name: "y_x", Kind: IntKind}},
			ForeignKeys: []ForeignKey{{Column: "y_x", RefTable: "x", RefColumn: "x_id"}}},
		{Name: "z", Columns: []Column{{Name: "z_y", Kind: IntKind}},
			ForeignKeys: []ForeignKey{{Column: "z_y", RefTable: "y", RefColumn: "y_id"}}},
	}}
}

func TestKindString(t *testing.T) {
	if IntKind.String() != "int" || FloatKind.String() != "float" || CategoricalKind.String() != "categorical" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestColumnLookup(t *testing.T) {
	tab := starSchema().Table("a")
	if tab.ColumnIndex("a_f") != 1 {
		t.Fatalf("ColumnIndex = %d", tab.ColumnIndex("a_f"))
	}
	if tab.ColumnIndex("nope") != -1 {
		t.Fatal("missing column should be -1")
	}
	c, ok := tab.Column("a_id")
	if !ok || c.Kind != IntKind {
		t.Fatal("Column lookup failed")
	}
	if _, ok := tab.Column("nope"); ok {
		t.Fatal("missing column should not be found")
	}
}

func TestValidate(t *testing.T) {
	if err := starSchema().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := starSchema()
	bad.Tables[0].PrimaryKey = "missing"
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for missing PK column")
	}
	bad2 := starSchema()
	bad2.Tables[1].ForeignKeys[0].Column = "missing"
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected error for missing FK column")
	}
	bad3 := starSchema()
	bad3.Tables[1].ForeignKeys[0].RefColumn = "missing"
	if err := bad3.Validate(); err == nil {
		t.Fatal("expected error for missing ref column")
	}
	bad4 := starSchema()
	bad4.Tables[1].FDs = []FunctionalDependency{{Determinant: "zzz", Dependent: "a_id"}}
	if err := bad4.Validate(); err == nil {
		t.Fatal("expected error for FD with unknown column")
	}
}

func TestRelationships(t *testing.T) {
	s := starSchema()
	rels := s.Relationships()
	if len(rels) != 2 {
		t.Fatalf("relationships = %d, want 2", len(rels))
	}
	for _, r := range rels {
		if r.One != "fact" {
			t.Fatalf("One side = %s, want fact", r.One)
		}
	}
	if rels[0].ID() != "fact<-a" && rels[0].ID() != "fact<-b" {
		t.Fatalf("relationship ID = %s", rels[0].ID())
	}
	rel, ok := s.RelationshipBetween("a", "fact")
	if !ok || rel.Many != "a" {
		t.Fatalf("RelationshipBetween = %+v, %v", rel, ok)
	}
	if _, ok := s.RelationshipBetween("a", "b"); ok {
		t.Fatal("a and b are not directly connected")
	}
}

func TestJoinTreeStar(t *testing.T) {
	s := starSchema()
	edges, err := s.JoinTree([]string{"a", "fact", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 {
		t.Fatalf("edges = %d, want 2", len(edges))
	}
	// Single table: no edges.
	edges, err = s.JoinTree([]string{"fact"})
	if err != nil || len(edges) != 0 {
		t.Fatalf("single-table join tree: %v, %v", edges, err)
	}
	// a-b without fact cannot connect.
	if _, err := s.JoinTree([]string{"a", "b"}); err == nil {
		t.Fatal("expected disconnection error")
	}
}

func TestJoinTreeChain(t *testing.T) {
	s := chain()
	edges, err := s.JoinTree([]string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 {
		t.Fatalf("chain edges = %d, want 2", len(edges))
	}
	if _, err := s.JoinTree([]string{"x", "z"}); err == nil {
		t.Fatal("x-z without y must fail")
	}
}

func TestNeighborEdges(t *testing.T) {
	s := chain()
	ye := s.NeighborEdges("y")
	if len(ye) != 2 {
		t.Fatalf("y has %d incident edges, want 2", len(ye))
	}
	xe := s.NeighborEdges("x")
	if len(xe) != 1 {
		t.Fatalf("x has %d incident edges, want 1", len(xe))
	}
}

func TestSchemaTableMissing(t *testing.T) {
	if starSchema().Table("nope") != nil {
		t.Fatal("missing table should be nil")
	}
}
