// Package schema describes relational metadata for DeepDB: tables, typed
// columns, primary/foreign keys, and user-declared functional dependencies.
// It is a pure-data package at the bottom of the dependency graph.
package schema

import "fmt"

// Kind is the logical type of a column.
type Kind int

const (
	// IntKind is a discrete integer attribute (also used for keys).
	IntKind Kind = iota
	// FloatKind is a continuous numeric attribute.
	FloatKind
	// CategoricalKind is a dictionary-encoded string attribute.
	CategoricalKind
)

// String returns a human-readable type name.
func (k Kind) String() string {
	switch k {
	case IntKind:
		return "int"
	case FloatKind:
		return "float"
	case CategoricalKind:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Column describes one attribute of a table.
type Column struct {
	Name     string
	Kind     Kind
	Nullable bool
}

// ForeignKey declares that Column of the owning table references
// RefColumn of RefTable (a many-to-one relationship: owning table is the
// "S" side, referenced table the "P" side in the paper's S <- P notation...
// here the referencing table holds many rows per referenced row).
type ForeignKey struct {
	Column    string // column in the referencing table
	RefTable  string // referenced (primary-key) table
	RefColumn string // referenced column, usually the PK
}

// FunctionalDependency declares Determinant -> Dependent between non-key
// attributes of one table (Section 3.2 of the paper). The dependent column
// is excluded from RSPN learning and resolved through a dictionary.
type FunctionalDependency struct {
	Determinant string
	Dependent   string
}

// Table is the metadata of one relation.
type Table struct {
	Name        string
	Columns     []Column
	PrimaryKey  string
	ForeignKeys []ForeignKey
	FDs         []FunctionalDependency
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Column returns the named column's metadata.
func (t *Table) Column(name string) (Column, bool) {
	if i := t.ColumnIndex(name); i >= 0 {
		return t.Columns[i], true
	}
	return Column{}, false
}

// Schema is a set of tables plus the FK graph connecting them.
type Schema struct {
	Tables []*Table
}

// Table returns the named table, or nil.
func (s *Schema) Table(name string) *Table {
	for _, t := range s.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Validate checks referential consistency: every FK references an existing
// table/column, every PK and FD names an existing column.
func (s *Schema) Validate() error {
	for _, t := range s.Tables {
		if t.PrimaryKey != "" && t.ColumnIndex(t.PrimaryKey) < 0 {
			return fmt.Errorf("schema: table %s: primary key %s not a column", t.Name, t.PrimaryKey)
		}
		for _, fk := range t.ForeignKeys {
			if t.ColumnIndex(fk.Column) < 0 {
				return fmt.Errorf("schema: table %s: FK column %s not a column", t.Name, fk.Column)
			}
			ref := s.Table(fk.RefTable)
			if ref == nil {
				return fmt.Errorf("schema: table %s: FK references unknown table %s", t.Name, fk.RefTable)
			}
			if ref.ColumnIndex(fk.RefColumn) < 0 {
				return fmt.Errorf("schema: table %s: FK references unknown column %s.%s", t.Name, fk.RefTable, fk.RefColumn)
			}
		}
		for _, fd := range t.FDs {
			if t.ColumnIndex(fd.Determinant) < 0 || t.ColumnIndex(fd.Dependent) < 0 {
				return fmt.Errorf("schema: table %s: FD %s->%s names unknown column", t.Name, fd.Determinant, fd.Dependent)
			}
		}
	}
	return nil
}

// Relationship is one FK edge in the schema graph, in the paper's
// S <- P orientation: Many (referencing) side and One (referenced) side.
type Relationship struct {
	// Many is the referencing table (e.g. Order referencing Customer).
	Many string
	// ManyColumn is the FK column in the Many table.
	ManyColumn string
	// One is the referenced table (e.g. Customer).
	One string
	// OneColumn is the referenced column (usually One's primary key).
	OneColumn string
}

// ID returns a stable identifier for the relationship, used to name tuple
// factor columns: F_{One<-Many}.
func (r Relationship) ID() string { return r.One + "<-" + r.Many }

// Relationships enumerates every FK edge in the schema.
func (s *Schema) Relationships() []Relationship {
	var out []Relationship
	for _, t := range s.Tables {
		for _, fk := range t.ForeignKeys {
			out = append(out, Relationship{
				Many: t.Name, ManyColumn: fk.Column,
				One: fk.RefTable, OneColumn: fk.RefColumn,
			})
		}
	}
	return out
}

// RelationshipBetween returns the FK edge connecting tables a and b (in
// either orientation), or false when the two are not directly connected.
func (s *Schema) RelationshipBetween(a, b string) (Relationship, bool) {
	for _, r := range s.Relationships() {
		if (r.Many == a && r.One == b) || (r.Many == b && r.One == a) {
			return r, true
		}
	}
	return Relationship{}, false
}

// JoinTree returns the set of relationships that connect the given tables
// into a single tree, or an error when the tables are not connected in the
// FK graph. DeepDB only supports equi-joins along FK edges, so a query's
// join condition is fully determined by its table set.
func (s *Schema) JoinTree(tables []string) ([]Relationship, error) {
	if len(tables) <= 1 {
		return nil, nil
	}
	want := make(map[string]bool, len(tables))
	for _, t := range tables {
		if s.Table(t) == nil {
			return nil, fmt.Errorf("schema: unknown table %s", t)
		}
		want[t] = true
	}
	// Breadth-first growth from the first table across FK edges whose both
	// endpoints are requested.
	connected := map[string]bool{tables[0]: true}
	var edges []Relationship
	for len(connected) < len(want) {
		grew := false
		for _, r := range s.Relationships() {
			if !want[r.Many] || !want[r.One] {
				continue
			}
			if connected[r.Many] == connected[r.One] {
				continue // both in or both out
			}
			connected[r.Many] = true
			connected[r.One] = true
			edges = append(edges, r)
			grew = true
		}
		if !grew {
			return nil, fmt.Errorf("schema: tables %v not connected by foreign keys", tables)
		}
	}
	return edges, nil
}

// NeighborEdges returns all FK edges incident to the named table.
func (s *Schema) NeighborEdges(table string) []Relationship {
	var out []Relationship
	for _, r := range s.Relationships() {
		if r.Many == table || r.One == table {
			out = append(out, r)
		}
	}
	return out
}
