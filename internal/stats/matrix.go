// Package stats provides the numerical substrate for DeepDB: ranking and
// copula transforms, the Randomized Dependence Coefficient (RDC), canonical
// correlation analysis, KMeans clustering, and distribution helpers.
//
// Everything is hand-rolled on the standard library so the module stays
// dependency-free and offline-buildable.
package stats

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float64 matrix. It is deliberately small and
// allocation-transparent: the RDC and CCA computations only ever deal with
// k x k matrices where k is the number of random projections (<= 32).
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero-initialized rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Mul returns the matrix product m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("stats: matrix dims %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			rowB := b.Data[k*b.Cols : (k+1)*b.Cols]
			rowO := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j := range rowB {
				rowO[j] += a * rowB[j]
			}
		}
	}
	return out
}

// Transpose returns the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// AddDiagonal adds v to every diagonal element (ridge regularization).
func (m *Matrix) AddDiagonal(v float64) {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += v
	}
}

// Inverse returns the inverse of a square matrix via Gauss-Jordan
// elimination with partial pivoting. It returns an error when the matrix is
// singular to working precision.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("stats: inverse of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	inv := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		inv.Set(i, i, 1)
	}
	for col := 0; col < n; col++ {
		// Partial pivot: find the row with the largest absolute value.
		pivot := col
		maxAbs := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(a.At(r, col)); abs > maxAbs {
				maxAbs, pivot = abs, r
			}
		}
		if maxAbs < 1e-12 {
			return nil, fmt.Errorf("stats: singular matrix at column %d", col)
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// SymmetricEigen computes all eigenvalues of a symmetric matrix using the
// cyclic Jacobi rotation method. Only eigenvalues are returned because the
// RDC needs the spectral radius, not the eigenvectors. The input is not
// modified.
func SymmetricEigen(m *Matrix) ([]float64, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("stats: eigen of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a.At(i, j) * a.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := a.At(k, p), a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := a.At(p, k), a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
			}
		}
	}
	eig := make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = a.At(i, i)
	}
	return eig, nil
}

// EigenvaluesGeneral computes eigenvalue magnitudes of a general (possibly
// non-symmetric) matrix via unshifted QR iteration with Householder
// reflections. It is used for the CCA product matrix, which is similar to a
// symmetric PSD matrix but not itself symmetric.
func EigenvaluesGeneral(m *Matrix) ([]float64, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("stats: eigen of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	const iters = 200
	for it := 0; it < iters; it++ {
		q, r := qrDecompose(a)
		a = r.Mul(q)
	}
	eig := make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = a.At(i, i)
	}
	return eig, nil
}

// qrDecompose computes a QR factorization with the modified Gram-Schmidt
// process, which is stable enough for the small well-conditioned matrices we
// feed it.
func qrDecompose(a *Matrix) (q, r *Matrix) {
	n := a.Rows
	q = NewMatrix(n, n)
	r = NewMatrix(n, n)
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		c := make([]float64, n)
		for i := 0; i < n; i++ {
			c[i] = a.At(i, j)
		}
		cols[j] = c
	}
	for j := 0; j < n; j++ {
		v := cols[j]
		for k := 0; k < j; k++ {
			dot := 0.0
			for i := 0; i < n; i++ {
				dot += q.At(i, k) * v[i]
			}
			r.Set(k, j, dot)
			for i := 0; i < n; i++ {
				v[i] -= dot * q.At(i, k)
			}
		}
		norm := 0.0
		for i := 0; i < n; i++ {
			norm += v[i] * v[i]
		}
		norm = math.Sqrt(norm)
		r.Set(j, j, norm)
		if norm < 1e-14 {
			// Degenerate column: leave Q column zero.
			continue
		}
		for i := 0; i < n; i++ {
			q.Set(i, j, v[i]/norm)
		}
	}
	return q, r
}
