package stats

import (
	"math"
	"math/rand"
)

// RDCConfig controls the Randomized Dependence Coefficient computation
// (Lopez-Paz et al., NIPS 2013), the correlation measure used by the MSPN
// learning algorithm and by DeepDB's ensemble construction.
type RDCConfig struct {
	// K is the number of random nonlinear projections per side.
	K int
	// Scale multiplies the Gaussian projection weights (s in the paper).
	Scale float64
	// Seed makes the projection deterministic.
	Seed int64
}

// DefaultRDCConfig mirrors the defaults used by SPFlow's MSPN learner:
// k = 20 projections with scale 1/6.
func DefaultRDCConfig() RDCConfig {
	return RDCConfig{K: 20, Scale: 1.0 / 6.0, Seed: 1}
}

// RDC computes the Randomized Dependence Coefficient between the paired
// samples xs and ys. The result lies in [0, 1]: 0 means independent (up to
// sampling noise), 1 means a deterministic relation. The three steps are
// (1) copula transform via empirical ranks, (2) random sine projections,
// (3) largest canonical correlation between the two projected sets.
func RDC(xs, ys []float64, cfg RDCConfig) float64 {
	n := len(xs)
	if n < 4 || n != len(ys) {
		return 0
	}
	if cfg.K <= 0 {
		cfg = DefaultRDCConfig()
	}
	cx := ECDF(xs)
	cy := ECDF(ys)
	rng := rand.New(rand.NewSource(cfg.Seed))
	px := sineProject(cx, cfg.K, cfg.Scale, rng)
	py := sineProject(cy, cfg.K, cfg.Scale, rng)
	rho, err := MaxCanonicalCorrelation(px, py)
	if err != nil {
		// Degenerate projections (constant columns). Fall back to the
		// absolute rank correlation, which is what RDC converges to in
		// the k=1 linear case.
		return math.Abs(Pearson(cx, cy))
	}
	return rho
}

// sineProject maps the 1-D copula values (augmented with a bias term) through
// k random sine features: sin(w*u + b) with w ~ N(0, scale) and a bias drawn
// uniformly. Returns an n x k matrix.
func sineProject(u []float64, k int, scale float64, rng *rand.Rand) *Matrix {
	n := len(u)
	w := make([]float64, k)
	b := make([]float64, k)
	for j := 0; j < k; j++ {
		w[j] = rng.NormFloat64() * scale * 2 * math.Pi
		b[j] = rng.Float64() * 2 * math.Pi
	}
	out := NewMatrix(n, k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			out.Set(i, j, math.Sin(w[j]*u[i]+b[j]))
		}
	}
	return out
}

// MaxCanonicalCorrelation returns the largest canonical correlation between
// the column spaces of X and Y (both n x k matrices with the same n).
// It solves the standard CCA eigenproblem
//
//	Cxx^-1 Cxy Cyy^-1 Cyx v = rho^2 v
//
// with a small ridge term for numerical stability, and returns rho.
func MaxCanonicalCorrelation(x, y *Matrix) (float64, error) {
	n := x.Rows
	cx := centered(x)
	cy := centered(y)
	inv := 1.0 / float64(n-1)
	cxx := scale(cx.Transpose().Mul(cx), inv)
	cyy := scale(cy.Transpose().Mul(cy), inv)
	cxy := scale(cx.Transpose().Mul(cy), inv)
	cyx := cxy.Transpose()
	const ridge = 1e-6
	cxx.AddDiagonal(ridge)
	cyy.AddDiagonal(ridge)
	ixx, err := cxx.Inverse()
	if err != nil {
		return 0, err
	}
	iyy, err := cyy.Inverse()
	if err != nil {
		return 0, err
	}
	m := ixx.Mul(cxy).Mul(iyy).Mul(cyx)
	eig, err := EigenvaluesGeneral(m)
	if err != nil {
		return 0, err
	}
	maxEig := 0.0
	for _, e := range eig {
		if e > maxEig {
			maxEig = e
		}
	}
	if maxEig > 1 {
		maxEig = 1 // clamp numerical overshoot
	}
	return math.Sqrt(maxEig), nil
}

func centered(m *Matrix) *Matrix {
	out := m.Clone()
	for j := 0; j < m.Cols; j++ {
		mean := 0.0
		for i := 0; i < m.Rows; i++ {
			mean += m.At(i, j)
		}
		mean /= float64(m.Rows)
		for i := 0; i < m.Rows; i++ {
			out.Set(i, j, m.At(i, j)-mean)
		}
	}
	return out
}

func scale(m *Matrix, f float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= f
	}
	return m
}
