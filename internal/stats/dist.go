package stats

import "math"

// NormalCDF returns P(Z <= x) for a standard normal variable Z.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the x with NormalCDF(x) == p using the
// Beasley-Springer-Moro / Acklam rational approximation, accurate to about
// 1e-9 over (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the central and tail regions (Acklam 2003).
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// ConfidenceZ returns the two-sided z value for the given confidence level,
// e.g. ConfidenceZ(0.95) ~= 1.96.
func ConfidenceZ(level float64) float64 {
	if level <= 0 || level >= 1 {
		return 1.959963984540054
	}
	return NormalQuantile(0.5 + level/2)
}

// ProductVariance returns the variance of the product of two independent
// random variables with the given means and variances:
//
//	V(XY) = V(X)V(Y) + V(X)E(Y)^2 + V(Y)E(X)^2
//
// This is the recursion used in Section 5.1 of the paper to propagate
// uncertainty through probabilistic query compilations.
func ProductVariance(meanX, varX, meanY, varY float64) float64 {
	return varX*varY + varX*meanY*meanY + varY*meanX*meanX
}

// BinomialVariance returns the variance of a proportion estimate p computed
// from n samples: p(1-p)/n. It guards against p outside [0, 1].
func BinomialVariance(p float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p * (1 - p) / float64(n)
}

// Welford accumulates running mean and variance in a single pass. It backs
// the exact executor's AVG/VAR aggregates and the sample-based confidence
// interval ground truth.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 when fewer than 2 points).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the Bessel-corrected sample variance.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}
