package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRanksSimple(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{5, 5, 1, 9})
	// ranks: 1 -> 1, the two 5s share (2+3)/2 = 2.5, 9 -> 4
	want := []float64{2.5, 2.5, 1, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksPermutationInvariant(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		ranks := Ranks(xs)
		// Sum of ranks must equal n(n+1)/2 regardless of ties.
		sum := 0.0
		for _, r := range ranks {
			sum += r
		}
		n := float64(len(xs))
		return math.Abs(sum-n*(n+1)/2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECDFRange(t *testing.T) {
	xs := []float64{4, 8, 15, 16, 23, 42}
	cs := ECDF(xs)
	for i, c := range cs {
		if c <= 0 || c > 1 {
			t.Fatalf("ECDF[%d] = %v out of (0,1]", i, c)
		}
	}
	if cs[5] != 1 {
		t.Fatalf("max element must map to 1, got %v", cs[5])
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestMatrixInverse(t *testing.T) {
	m := NewMatrix(3, 3)
	vals := [][]float64{{4, 7, 2}, {3, 6, 1}, {2, 5, 3}}
	for i := range vals {
		for j := range vals[i] {
			m.Set(i, j, vals[i][j])
		}
	}
	inv, err := m.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prod := m.Mul(inv)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-9 {
				t.Fatalf("M*M^-1 not identity: %v", prod)
			}
		}
	}
}

func TestMatrixInverseSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := m.Inverse(); err == nil {
		t.Fatal("expected error inverting singular matrix")
	}
}

func TestSymmetricEigen(t *testing.T) {
	// Matrix [[2,1],[1,2]] has eigenvalues 1 and 3.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	eig, err := SymmetricEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Min(eig[0], eig[1]), math.Max(eig[0], eig[1])
	if math.Abs(lo-1) > 1e-8 || math.Abs(hi-3) > 1e-8 {
		t.Fatalf("eigenvalues = %v, want [1 3]", eig)
	}
}

func TestEigenvaluesGeneralDiagonal(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Set(0, 0, 5)
	m.Set(1, 1, 2)
	m.Set(2, 2, 0.5)
	eig, err := EigenvaluesGeneral(m)
	if err != nil {
		t.Fatal(err)
	}
	max := 0.0
	for _, e := range eig {
		if e > max {
			max = e
		}
	}
	if math.Abs(max-5) > 1e-6 {
		t.Fatalf("max eigenvalue = %v, want 5", max)
	}
}

func TestRDCIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	rdc := RDC(xs, ys, DefaultRDCConfig())
	if rdc > 0.25 {
		t.Fatalf("RDC of independent noise = %v, want small", rdc)
	}
}

func TestRDCLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.NormFloat64()
		ys[i] = 3*xs[i] + 0.01*rng.NormFloat64()
	}
	rdc := RDC(xs, ys, DefaultRDCConfig())
	if rdc < 0.9 {
		t.Fatalf("RDC of linear relation = %v, want near 1", rdc)
	}
}

func TestRDCNonlinear(t *testing.T) {
	// RDC's selling point: it detects non-monotonic dependence that
	// Pearson misses entirely.
	rng := rand.New(rand.NewSource(11))
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()*4 - 2
		ys[i] = xs[i]*xs[i] + 0.05*rng.NormFloat64()
	}
	rdc := RDC(xs, ys, DefaultRDCConfig())
	if rdc < 0.5 {
		t.Fatalf("RDC of quadratic relation = %v, want > 0.5", rdc)
	}
	if p := math.Abs(Pearson(xs, ys)); p > 0.2 {
		t.Fatalf("Pearson of symmetric quadratic = %v, expected near 0", p)
	}
}

func TestRDCDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 500
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	a := RDC(xs, ys, DefaultRDCConfig())
	b := RDC(xs, ys, DefaultRDCConfig())
	if a != b {
		t.Fatalf("RDC not deterministic: %v vs %v", a, b)
	}
}

func TestKMeansSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var points [][]float64
	for i := 0; i < 100; i++ {
		points = append(points, []float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1})
	}
	for i := 0; i < 100; i++ {
		points = append(points, []float64{10 + rng.NormFloat64()*0.1, 10 + rng.NormFloat64()*0.1})
	}
	res := KMeans(points, 2, 50, rng)
	// All of the first 100 points must share a cluster, all of the last 100
	// the other.
	c0 := res.Assignments[0]
	for i := 1; i < 100; i++ {
		if res.Assignments[i] != c0 {
			t.Fatalf("point %d assigned %d, want %d", i, res.Assignments[i], c0)
		}
	}
	c1 := res.Assignments[100]
	if c1 == c0 {
		t.Fatal("clusters not separated")
	}
	for i := 101; i < 200; i++ {
		if res.Assignments[i] != c1 {
			t.Fatalf("point %d assigned %d, want %d", i, res.Assignments[i], c1)
		}
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	points := [][]float64{{1}, {2}}
	res := KMeans(points, 10, 10, rand.New(rand.NewSource(1)))
	if len(res.Centroids) != 2 {
		t.Fatalf("k should clamp to n: got %d centroids", len(res.Centroids))
	}
}

func TestNearestCentroid(t *testing.T) {
	cents := [][]float64{{0, 0}, {10, 10}}
	if got := NearestCentroid([]float64{1, 1}, cents); got != 0 {
		t.Fatalf("NearestCentroid = %d, want 0", got)
	}
	if got := NearestCentroid([]float64{9, 9}, cents); got != 1 {
		t.Fatalf("NearestCentroid = %d, want 1", got)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.999} {
		x := NormalQuantile(p)
		back := NormalCDF(x)
		if math.Abs(back-p) > 1e-6 {
			t.Errorf("round trip p=%v -> x=%v -> %v", p, x, back)
		}
	}
}

func TestConfidenceZ(t *testing.T) {
	if z := ConfidenceZ(0.95); math.Abs(z-1.95996) > 1e-3 {
		t.Fatalf("ConfidenceZ(0.95) = %v, want 1.96", z)
	}
	if z := ConfidenceZ(0.99); math.Abs(z-2.5758) > 1e-3 {
		t.Fatalf("ConfidenceZ(0.99) = %v, want 2.576", z)
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		wantMean := Mean(xs)
		wantVar := Variance(xs)
		scale := math.Max(1, math.Abs(wantMean))
		if math.Abs(w.Mean()-wantMean)/scale > 1e-6 {
			return false
		}
		vscale := math.Max(1, wantVar)
		return math.Abs(w.Variance()-wantVar)/vscale < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProductVariance(t *testing.T) {
	// For constants (zero variance) the product variance must be zero.
	if v := ProductVariance(3, 0, 4, 0); v != 0 {
		t.Fatalf("ProductVariance of constants = %v", v)
	}
	// V(XY) >= V(X)*E(Y)^2 for independent variables.
	v := ProductVariance(2, 1, 3, 0.5)
	if v < 1*9 {
		t.Fatalf("ProductVariance = %v, want >= 9", v)
	}
}

func TestBinomialVariance(t *testing.T) {
	if v := BinomialVariance(0.5, 100); math.Abs(v-0.0025) > 1e-12 {
		t.Fatalf("BinomialVariance = %v, want 0.0025", v)
	}
	if v := BinomialVariance(-1, 100); v != 0 {
		t.Fatalf("clamped p<0 should give 0, got %v", v)
	}
	if v := BinomialVariance(0.5, 0); v != 0 {
		t.Fatalf("n=0 should give 0, got %v", v)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if p := Pearson(xs, ys); math.Abs(p-1) > 1e-12 {
		t.Fatalf("Pearson = %v, want 1", p)
	}
	neg := []float64{8, 6, 4, 2}
	if p := Pearson(xs, neg); math.Abs(p+1) > 1e-12 {
		t.Fatalf("Pearson = %v, want -1", p)
	}
}

func TestMaxCanonicalCorrelationIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, k := 200, 5
	x := NewMatrix(n, k)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	rho, err := MaxCanonicalCorrelation(x, x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.999 {
		t.Fatalf("CCA of identical matrices = %v, want ~1", rho)
	}
}
