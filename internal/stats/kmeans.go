package stats

import (
	"math"
	"math/rand"
)

// KMeansResult holds the outcome of a KMeans run: per-point cluster
// assignments and the final centroids. Centroids are retained by RSPN sum
// nodes so that incremental updates (Algorithm 1 in the paper) can route new
// tuples to the nearest existing cluster.
type KMeansResult struct {
	Assignments []int       // len == number of points
	Centroids   [][]float64 // K x dims
	Sizes       []int       // points per cluster
}

// KMeans clusters the given points (each a dims-length vector) into k
// clusters using kmeans++ initialization and Lloyd iterations. The rng makes
// runs reproducible. Empty clusters are re-seeded from the farthest point.
func KMeans(points [][]float64, k int, maxIter int, rng *rand.Rand) KMeansResult {
	n := len(points)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 30
	}
	centroids := kmeansppInit(points, k, rng)
	assign := make([]int, n)
	sizes := make([]int, k)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i := range sizes {
			sizes[i] = 0
		}
		for i, p := range points {
			best, bestD := 0, math.MaxFloat64
			for c, cen := range centroids {
				d := sqDist(p, cen)
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			sizes[best]++
		}
		// Recompute centroids.
		dims := len(points[0])
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dims)
		}
		for i, p := range points {
			c := assign[i]
			for d, v := range p {
				sums[c][d] += v
			}
		}
		for c := 0; c < k; c++ {
			if sizes[c] == 0 {
				// Re-seed an empty cluster from a random point so every
				// cluster stays populated.
				centroids[c] = append([]float64(nil), points[rng.Intn(n)]...)
				changed = true
				continue
			}
			for d := range sums[c] {
				sums[c][d] /= float64(sizes[c])
			}
			centroids[c] = sums[c]
		}
		if !changed && iter > 0 {
			break
		}
	}
	return KMeansResult{Assignments: assign, Centroids: centroids, Sizes: sizes}
}

// kmeansppInit picks k initial centroids with the kmeans++ D^2 weighting.
func kmeansppInit(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))
	dist := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		last := centroids[len(centroids)-1]
		for i, p := range points {
			d := sqDist(p, last)
			if len(centroids) == 1 || d < dist[i] {
				dist[i] = d
			}
			total += dist[i]
		}
		if total == 0 {
			// All remaining points coincide with centroids; duplicate one.
			centroids = append(centroids, append([]float64(nil), points[rng.Intn(n)]...))
			continue
		}
		r := rng.Float64() * total
		acc := 0.0
		pick := n - 1
		for i, d := range dist {
			acc += d
			if acc >= r {
				pick = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[pick]...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// NearestCentroid returns the index of the centroid closest to point in
// Euclidean distance. It is the routing primitive of the RSPN update
// algorithm (Algorithm 1, line 5).
func NearestCentroid(point []float64, centroids [][]float64) int {
	best, bestD := 0, math.MaxFloat64
	for c, cen := range centroids {
		d := sqDist(point, cen)
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
