package stats

import (
	"math"
	"sort"
)

// Ranks returns the fractional (average-tie) ranks of xs, 1-based. The rank
// of the smallest value is 1 and ties receive the average of the ranks they
// span, matching the convention used for copula transforms in the RDC paper.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// ECDF returns the empirical copula transform of xs: each value is mapped to
// its fractional rank divided by n, yielding values in (0, 1].
func ECDF(xs []float64) []float64 {
	ranks := Ranks(xs)
	n := float64(len(xs))
	out := make([]float64, len(xs))
	for i, r := range ranks {
		out[i] = r / n
	}
	return out
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Pearson returns the Pearson correlation coefficient of the paired samples
// xs and ys. It returns 0 when either side has zero variance.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / (math.Sqrt(sxx) * math.Sqrt(syy))
}
