package main

// unitchecker.go implements the `go vet -vettool` protocol: the go command
// invokes the tool once per package "unit" with a single JSON config file
// argument describing the unit's sources and the export-data files of its
// dependencies. The tool type-checks the unit, runs the analyzers, writes
// the (empty — these analyzers exchange no facts) .vetx facts file the go
// command expects, prints diagnostics to stderr and exits nonzero if any.
//
// This mirrors golang.org/x/tools/go/analysis/unitchecker, which cannot be
// imported here (the module is dependency-free by design).

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// vetConfig is the JSON schema of the config file the go command passes to
// vet tools (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// versionHandshake answers `deepdb-lint -V=full`: the go command hashes the
// output into the action cache key for vet results, so it must identify
// this binary's exact build.
func versionHandshake() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, h.Sum(nil))
}

// unitcheck analyzes one vet unit and exits.
func unitcheck(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatalf("deepdb-lint: reading vet config: %v", err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("deepdb-lint: parsing vet config %s: %v", cfgFile, err)
	}

	diags, err := analyzeUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatalf("deepdb-lint: %s: %v", cfg.ImportPath, err)
	}

	// The go command requires the facts file to exist even when empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			log.Fatalf("deepdb-lint: writing facts: %v", err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// analyzeUnit parses, type-checks and analyzes one unit, returning rendered
// diagnostics.
func analyzeUnit(cfg *vetConfig) ([]string, error) {
	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, compilerOf(cfg), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})

	var files []*ast.File
	for _, name := range cfg.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(cfg.Dir, name)
		}
		f, err := parseFile(fset, path)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := load.NewInfo()
	tconf := types.Config{Importer: imp, GoVersion: strings.TrimSuffix(cfg.GoVersion, " // indirect")}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	// Drop test files: the invariants govern production code only.
	var prod []*ast.File
	for _, f := range files {
		if !load.IsTestFile(fset, f) {
			prod = append(prod, f)
		}
	}
	if len(prod) == 0 {
		return nil, nil
	}
	dirs := analysis.ParseDirectives(fset, prod)

	var diags []string
	for _, a := range analyzers {
		if !a.AppliesTo(cfg.ImportPath) {
			continue
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      prod,
			Pkg:        pkg,
			TypesInfo:  info,
			Directives: dirs,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, fmt.Sprintf("%s: %s [%s]", fset.Position(d.Pos), d.Message, a.Name))
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	// diags keep (analyzer, source) order — deterministic without string
	// sorting, which would order line 10 before line 2.
	return diags, nil
}

// parseFile parses one source file with comments (directives live there).
func parseFile(fset *token.FileSet, path string) (*ast.File, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	return f, nil
}

func compilerOf(cfg *vetConfig) string {
	if cfg.Compiler != "" {
		return cfg.Compiler
	}
	return "gc"
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
