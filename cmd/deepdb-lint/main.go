// Command deepdb-lint is the repository's invariant multichecker: it runs
// the project-specific analyzers under internal/analysis/… (determinism of
// map iteration, snapshot discipline, WAL ordering, context propagation,
// hard-coded timeout budgets, suppression-directive grammar) over Go
// packages and fails when any
// unsuppressed finding remains.
//
// Two invocation modes:
//
//	deepdb-lint [-json|-report] ./...        # standalone, loads packages itself
//	go vet -vettool=$(pwd)/deepdb-lint ./... # as a vet tool (unitchecker protocol)
//
// The vet-tool mode makes the suite a drop-in `go vet` pass: the go command
// hands each package's files and export data to the tool, caches results
// per package, and reruns only what changed. The standalone mode is used
// for reports and ad-hoc runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxloop"
	"repro/internal/analysis/detmap"
	"repro/internal/analysis/directive"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/hardtimeout"
	"repro/internal/analysis/load"
	"repro/internal/analysis/snapdiscipline"
	"repro/internal/analysis/walorder"
)

// analyzers is the full suite, in report order.
var analyzers = []*analysis.Analyzer{
	detmap.Analyzer,
	snapdiscipline.Analyzer,
	walorder.Analyzer,
	ctxloop.Analyzer,
	hardtimeout.Analyzer,
	directive.Analyzer,
}

func main() {
	// The go command probes vet tools before use: `-V=full` must print a
	// version line it can hash into the build cache key, and `-flags` must
	// list the tool's flags (none beyond the standard ones here).
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" {
			versionHandshake()
			return
		}
		if arg == "-flags" || arg == "--flags" {
			// The go command asks which analyzer flags exist so it can
			// route `go vet -<flag>` arguments; this tool defines none.
			fmt.Println("[]")
			return
		}
	}

	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	report := flag.Bool("report", false, "emit a per-analyzer summary report (never fails)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()

	if len(args) == 1 && args[0] == "help" {
		help()
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// go vet -vettool invocation: one package unit described by a JSON
		// config file.
		unitcheck(args[0])
		return
	}
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	pkgs, err := load.Packages(args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepdb-lint:", err)
		os.Exit(1)
	}
	for _, p := range pkgs {
		// Type errors make analysis unreliable; surface them instead.
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "deepdb-lint: %s: %v\n", p.ImportPath, terr)
		}
		if len(p.TypeErrors) > 0 {
			os.Exit(1)
		}
	}
	findings, err := driver.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepdb-lint:", err)
		os.Exit(1)
	}
	switch {
	case *report:
		printReport(findings)
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []driver.Finding{}
		}
		enc.Encode(findings) //nolint:errcheck // stdout
		if len(findings) > 0 {
			os.Exit(1)
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			os.Exit(1)
		}
	}
}

// printReport renders a per-analyzer breakdown (for `make lint-fix-report`)
// and exits 0 regardless of findings: the report is for planning fixes, not
// gating.
func printReport(findings []driver.Finding) {
	byAnalyzer := map[string][]driver.Finding{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], f)
	}
	fmt.Printf("deepdb-lint report: %d finding(s)\n", len(findings))
	for _, a := range analyzers {
		fs := byAnalyzer[a.Name]
		fmt.Printf("\n%s (%d)\n", a.Name, len(fs))
		for _, f := range fs {
			fmt.Printf("  %s:%d:%d %s\n", f.File, f.Line, f.Col, f.Message)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  deepdb-lint [-json|-report] <packages>   standalone (e.g. deepdb-lint ./...)
  go vet -vettool=<path-to-deepdb-lint> <packages>
  deepdb-lint help                         describe the analyzers
`)
}

func help() {
	fmt.Println("deepdb-lint enforces this repository's concurrency and determinism invariants:")
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	for _, a := range analyzers {
		fmt.Printf("\n%s: %s\n", a.Name, a.Doc)
		if a.Scope != nil {
			scope := make([]string, 0, len(a.Scope))
			for p := range a.Scope {
				scope = append(scope, p)
			}
			sort.Strings(scope)
			fmt.Printf("  scope: %s\n", strings.Join(scope, ", "))
		}
	}
	fmt.Println("\nSuppression: //deepdb:<directive> <justification> on the flagged line or the line above.")
}
