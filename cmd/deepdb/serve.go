package main

// serve.go implements `deepdb serve`: an HTTP/JSON front-end that serves a
// learned model file fully data-free under concurrent load. It is built
// exclusively on the public deepdb API — db.Query/EstimateCardinality for
// ad-hoc SQL (which transparently reuse cached plans per query shape) and
// Prepare/Exec for parameterized requests — so every request pays the
// compile cost at most once per query shape.
//
// Endpoints (POST a JSON body, or GET with ?sql=...):
//
//	/query    {"sql": "...", "params": [...], "confidence": 0.99}
//	          -> {"groups": [{"key", "labels", "value", "variance", "ci_low", "ci_high"}], "elapsed_us"}
//	/estimate same request -> {"value", "variance", "ci_low", "ci_high", "elapsed_us"}
//	/explain  {"sql": "..."} -> {"plan": "..."}
//	/healthz  -> {"status": "ok", "models", "tables", "data_attached"}
//
// params entries may be JSON numbers or strings; strings are resolved
// through the dictionaries persisted in the model, so string predicates
// work without any data directory.

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/deepdb"
)

func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	model := fs.String("model", "model.deepdb", "model file from deepdb learn")
	addr := fs.String("addr", ":8491", "listen address")
	dataDir := fs.String("data", "", "optional data directory (only needed if clients use exact-execution features)")
	parallel := fs.Int("parallel", 0, "per-query fan-out parallelism (<=1 sequential)")
	cache := fs.Int("cache", 0, "plan cache size (0 keeps the default)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the serving process to this file (finalized at shutdown)")
	withPprof := fs.Bool("pprof", false, "expose net/http/pprof endpoints under /debug/pprof/ for live hot-path diagnosis")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("deepdb: creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("deepdb: starting cpu profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	var opts []deepdb.Option
	if *dataDir != "" {
		opts = append(opts, deepdb.WithDataDir(*dataDir))
	}
	if *parallel > 1 {
		opts = append(opts, deepdb.WithParallelism(*parallel))
	}
	if *cache > 0 {
		opts = append(opts, deepdb.WithPlanCacheSize(*cache))
	}
	db, err := deepdb.Open(ctx, *model, opts...)
	if err != nil {
		return err
	}
	handler := newServeHandler(db)
	if *withPprof {
		handler = withPprofEndpoints(handler)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	// Shut down gracefully on SIGINT/SIGTERM: stop accepting, drain
	// in-flight queries.
	sigCtx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-sigCtx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(shutCtx)
	}()
	fmt.Printf("deepdb: serving %s on %s (data-free: %v)\n", *model, *addr, db.Data() == nil)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-done
}

// withPprofEndpoints overlays the net/http/pprof debug endpoints on the
// serving mux, so hot-path regressions are diagnosable against the live
// process (`go tool pprof http://host/debug/pprof/profile`).
func withPprofEndpoints(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	return mux
}

// serveHandler is the HTTP surface over one *DB. The DB's own RWMutex
// makes concurrent request handling safe; no extra locking is needed.
type serveHandler struct {
	db *deepdb.DB
}

// newServeHandler builds the endpoint mux; split out of cmdServe so tests
// can drive it through httptest without binding a port.
func newServeHandler(db *deepdb.DB) http.Handler {
	s := &serveHandler{db: db}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/estimate", s.handleEstimate)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// apiRequest is the JSON request body of /query, /estimate and /explain.
type apiRequest struct {
	SQL string `json:"sql"`
	// Params bind `?` placeholders in order; numbers or strings.
	Params []any `json:"params,omitempty"`
	// Confidence overrides the interval level for this request.
	Confidence float64 `json:"confidence,omitempty"`
}

type apiGroup struct {
	Key      []float64 `json:"key,omitempty"`
	Labels   []string  `json:"labels,omitempty"`
	Value    float64   `json:"value"`
	Variance float64   `json:"variance"`
	CILow    float64   `json:"ci_low"`
	CIHigh   float64   `json:"ci_high"`
}

type apiError struct {
	Error string `json:"error"`
}

// decodeRequest accepts a POSTed JSON body or a GET with ?sql=.
func decodeRequest(w http.ResponseWriter, r *http.Request) (apiRequest, bool) {
	var req apiRequest
	switch r.Method {
	case http.MethodGet:
		req.SQL = r.URL.Query().Get("sql")
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid JSON body: " + err.Error()})
			return req, false
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "use GET with ?sql= or POST a JSON body"})
		return req, false
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "missing sql"})
		return req, false
	}
	if req.Confidence != 0 && (req.Confidence <= 0 || req.Confidence >= 1) {
		writeJSON(w, http.StatusBadRequest,
			apiError{Error: fmt.Sprintf("confidence must be in (0, 1), got %v", req.Confidence)})
		return req, false
	}
	return req, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// execOpts converts the request's per-call options.
func (req apiRequest) execOpts() []deepdb.ExecOption {
	if req.Confidence > 0 {
		return []deepdb.ExecOption{deepdb.AtConfidence(req.Confidence)}
	}
	return nil
}

// paramArgs merges params and options into a Stmt.Exec argument list.
func (req apiRequest) paramArgs() []any {
	args := append([]any(nil), req.Params...)
	for _, o := range req.execOpts() {
		args = append(args, o)
	}
	return args
}

func (s *serveHandler) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	start := time.Now()
	var res deepdb.Result
	var err error
	if len(req.Params) > 0 {
		var stmt *deepdb.Stmt
		stmt, err = s.db.Prepare(req.SQL)
		if err == nil {
			res, err = stmt.Exec(r.Context(), req.paramArgs()...)
		}
	} else {
		res, err = s.db.Query(r.Context(), req.SQL, req.execOpts()...)
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	groups := make([]apiGroup, 0, len(res.Groups))
	for _, g := range res.Groups {
		groups = append(groups, apiGroup{Key: g.Key, Labels: g.Labels,
			Value: g.Value, Variance: g.Variance, CILow: g.CILow, CIHigh: g.CIHigh})
	}
	writeJSON(w, http.StatusOK, struct {
		Groups    []apiGroup `json:"groups"`
		ElapsedUS int64      `json:"elapsed_us"`
	}{groups, time.Since(start).Microseconds()})
}

func (s *serveHandler) handleEstimate(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	start := time.Now()
	var est deepdb.Estimate
	var err error
	if len(req.Params) > 0 {
		var stmt *deepdb.Stmt
		stmt, err = s.db.Prepare(req.SQL)
		if err == nil {
			est, err = stmt.Estimate(r.Context(), req.paramArgs()...)
		}
	} else {
		est, err = s.db.EstimateCardinality(r.Context(), req.SQL, req.execOpts()...)
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Value     float64 `json:"value"`
		Variance  float64 `json:"variance"`
		CILow     float64 `json:"ci_low"`
		CIHigh    float64 `json:"ci_high"`
		ElapsedUS int64   `json:"elapsed_us"`
	}{est.Value, est.Variance, est.CILow, est.CIHigh, time.Since(start).Microseconds()})
}

func (s *serveHandler) handleExplain(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	plan, err := s.db.Explain(r.Context(), req.SQL)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Plan string `json:"plan"`
	}{plan})
}

func (s *serveHandler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status       string `json:"status"`
		Models       int    `json:"models"`
		Tables       int    `json:"tables"`
		DataAttached bool   `json:"data_attached"`
	}{
		Status:       "ok",
		Models:       len(s.db.Models()),
		Tables:       len(s.db.Schema().Tables),
		DataAttached: s.db.Data() != nil,
	})
}
