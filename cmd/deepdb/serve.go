package main

// serve.go implements `deepdb serve`: an HTTP/JSON front-end that serves a
// learned model file fully data-free under concurrent load. It is built
// exclusively on the public deepdb API — db.Query/EstimateCardinality for
// ad-hoc SQL (which transparently reuse cached plans per query shape) and
// Prepare/Exec for parameterized requests — so every request pays the
// compile cost at most once per query shape.
//
// Endpoints (POST a JSON body, or GET with ?sql=...):
//
//	/query    {"sql": "...", "params": [...], "confidence": 0.99}
//	          -> {"groups": [{"key", "labels", "value", "variance", "ci_low", "ci_high"}], "elapsed_us"}
//	/estimate same request -> {"value", "variance", "ci_low", "ci_high", "elapsed_us"}
//	/explain  {"sql": "..."} -> {"plan": "..."}
//	/insert   {"table": "...", "values": {"col": 1.5, "region": "EU", "note": null}}
//	          -> {"queued": true, "generation"}   (enqueued; apply is asynchronous)
//	/delete   {"table": "...", "pk": 123} -> {"queued": true, "generation"}
//	/flush    {} -> {"flushed": true, "generation"}   (read-your-writes barrier)
//	/reload   {"model": "path"} -> {"reloaded": true, "generation"}
//	          (hot model swap: readers keep serving the old snapshot until
//	          the new one publishes atomically; allowed under -readonly)
//	/healthz  -> {"status": "ok", "models", "tables", "data_attached",
//	              "readonly", "updates": {queue depth, lag, batches,
//	              "wal": {LSN watermarks, fsync counters},
//	              "drift": [per-member staleness], relearn counters, ...},
//	              "shards": [per-shard members + pipeline stats with -shards]}
//
// params entries may be JSON numbers or strings; strings are resolved
// through the dictionaries persisted in the model, so string predicates
// work without any data directory. Insert values follow the same rule.
// Mutations require the server to have data attached (-data) and are
// rejected with 403 under -readonly; queries keep serving from immutable
// snapshots either way and never wait for writers.
//
// -shards N partitions the ensemble behind the in-process fan-out router
// (bit-identical to single-process serving); -shard-peers offloads shard
// evaluation to `deepdb shard` replica processes with automatic local
// fallback. -request-timeout bounds each request's wall clock, -max-body
// its payload, and -max-inflight the number served concurrently (excess
// is shed with 429 + Retry-After; /healthz stays exempt so load balancers
// can always probe).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/deepdb"
	"repro/internal/fault"
	"repro/internal/rspn"
)

// shutdownTimeout bounds the graceful drain of in-flight requests after
// SIGINT/SIGTERM (both `deepdb serve` and `deepdb shard` use it).
const shutdownTimeout = 10 * time.Second

func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	model := fs.String("model", "model.deepdb", "model file from deepdb learn")
	addr := fs.String("addr", ":8491", "listen address")
	dataDir := fs.String("data", "", "optional data directory (only needed if clients use exact-execution features)")
	parallel := fs.Int("parallel", 0, "per-query fan-out parallelism (<=1 sequential)")
	cache := fs.Int("cache", 0, "plan cache size (0 keeps the default)")
	resultCache := fs.Int("result-cache", 0, "cross-query result cache size in entries (0 disables; hits skip evaluation entirely and are invalidated by every published snapshot)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the serving process to this file (finalized at shutdown)")
	withPprof := fs.Bool("pprof", false, "expose net/http/pprof endpoints under /debug/pprof/ for live hot-path diagnosis")
	readonly := fs.Bool("readonly", false, "reject /insert, /delete and /flush (serve a frozen snapshot)")
	walDir := fs.String("wal", "", "write-ahead log directory: accepted mutations become durable and are replayed on restart (with -shards, each shard logs into its own subdirectory)")
	durability := fs.String("durability", "batched", "WAL fsync policy: sync, batched or off (needs -wal)")
	driftFrac := fs.Float64("drift", 0, "re-learn an ensemble member in the background once this fraction of its rows mutated (0 disables; needs -data; ignored with -shards)")
	shards := fs.Int("shards", 0, "partition the ensemble into this many shards behind the fan-out router (0/1 serves single-process)")
	peers := fs.String("shard-peers", "", "comma-separated replica base URLs, one per shard in shard order (started with `deepdb shard -index i`); any replica failure falls back to local evaluation")
	requestTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request wall-clock budget; exceeding it answers 503 (0 disables)")
	maxBody := fs.Int64("max-body", 1<<20, "largest accepted request body in bytes")
	maxInflight := fs.Int("max-inflight", 0, "bound on concurrently served requests; beyond it requests are shed with 429 (0 unlimited; /healthz is exempt)")
	// Deliberately undocumented in -h output prose: chaos-run injection.
	// The spec grammar is internal/fault's; e.g.
	//   -fault-spec 'point=shard.eval;kind=latency;d=50ms;prob=0.1;seed=7'
	faultSpec := fs.String("fault-spec", "", "activate a fault-injection schedule for this process (chaos testing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *faultSpec != "" {
		sched, err := fault.Parse(*faultSpec)
		if err != nil {
			return err
		}
		fault.Enable(sched)
		defer fault.Disable()
		fmt.Fprintf(os.Stderr, "deepdb: FAULT INJECTION ACTIVE: %s\n", *faultSpec)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("deepdb: creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("deepdb: starting cpu profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	var opts []deepdb.Option
	if *dataDir != "" {
		opts = append(opts, deepdb.WithDataDir(*dataDir))
	}
	if *parallel > 1 {
		opts = append(opts, deepdb.WithParallelism(*parallel))
	}
	if *cache > 0 {
		opts = append(opts, deepdb.WithPlanCacheSize(*cache))
	}
	if *resultCache > 0 {
		opts = append(opts, deepdb.WithResultCacheSize(*resultCache))
	}
	if *walDir != "" {
		opts = append(opts, deepdb.WithWAL(*walDir))
	}
	if d, ok := deepdb.ParseDurability(*durability); ok {
		opts = append(opts, deepdb.WithDurability(d))
	} else {
		return fmt.Errorf("unknown -durability %q (want sync, batched or off)", *durability)
	}
	if *driftFrac > 0 {
		opts = append(opts, deepdb.WithDriftThreshold(*driftFrac))
	}
	// Serving front-ends shed on a full update queue (429 + Retry-After)
	// instead of pinning a handler goroutine per blocked writer.
	opts = append(opts, deepdb.WithNonBlockingUpdates())
	var db backend
	var err error
	if *shards > 1 || *peers != "" {
		sopts := append(opts, deepdb.WithShards(*shards))
		if *peers != "" {
			sopts = append(sopts, deepdb.WithShardPeers(strings.Split(*peers, ",")...))
		}
		db, err = deepdb.OpenSharded(ctx, *model, sopts...)
	} else {
		db, err = deepdb.Open(ctx, *model, opts...)
	}
	if err != nil {
		return err
	}
	// Drain the update pipeline on shutdown so accepted mutations are
	// applied before the process exits.
	defer db.Close()
	handler := newServeHandler(db, *readonly, withMaxBody(*maxBody))
	if *requestTimeout > 0 {
		handler = http.TimeoutHandler(handler, *requestTimeout, "request timed out")
	}
	handler = withInflightLimit(handler, *maxInflight)
	if *withPprof {
		handler = withPprofEndpoints(handler)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	// Shut down gracefully on SIGINT/SIGTERM: stop accepting, drain
	// in-flight queries.
	sigCtx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-sigCtx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		done <- srv.Shutdown(shutCtx)
	}()
	if sh, ok := db.(sharded); ok {
		fmt.Printf("deepdb: serving %s on %s (data-free: %v, shards: %d)\n", *model, *addr, db.Data() == nil, sh.Shards())
	} else {
		fmt.Printf("deepdb: serving %s on %s (data-free: %v)\n", *model, *addr, db.Data() == nil)
	}
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-done
}

// withPprofEndpoints overlays the net/http/pprof debug endpoints on the
// serving mux, so hot-path regressions are diagnosable against the live
// process (`go tool pprof http://host/debug/pprof/profile`).
func withPprofEndpoints(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	return mux
}

// backend is the database surface the front-end serves — implemented by
// both *deepdb.DB (single-process) and *deepdb.ShardedDB (the fan-out
// router over partitioned shards). Queries come from immutable published
// snapshots and updates are serialized inside the backend; results are
// bit-identical between the two implementations.
type backend interface {
	Prepare(sql string) (*deepdb.Stmt, error)
	Query(ctx context.Context, sql string, opts ...deepdb.ExecOption) (deepdb.Result, error)
	QueryRows(ctx context.Context, sql string, opts ...deepdb.ExecOption) (*deepdb.Rows, error)
	EstimateCardinality(ctx context.Context, sql string, opts ...deepdb.ExecOption) (deepdb.Estimate, error)
	Explain(ctx context.Context, sql string) (string, error)
	ResolveLabel(column, literal string) (float64, error)
	Insert(table string, values map[string]deepdb.Value) error
	Delete(table string, pk float64) error
	Flush(ctx context.Context) error
	Reload(modelPath string) error
	Generation() uint64
	Schema() *deepdb.Schema
	Data() deepdb.Dataset
	Models() []*rspn.RSPN
	UpdateStats() deepdb.UpdateStats
	Close() error
}

// sharded is the extra surface a ShardedDB backend exposes; /healthz
// reports per-shard health when present.
type sharded interface {
	Shards() int
	ShardStats() []deepdb.ShardStat
	PeerStats() (hits, fallbacks uint64)
}

// withInflightLimit bounds concurrently served requests: beyond n, requests
// are shed immediately with 429 + Retry-After instead of queueing. /healthz
// is exempt so health stays observable under exactly the overload the
// limiter exists for.
func withInflightLimit(h http.Handler, n int) http.Handler {
	if n <= 0 {
		return h
	}
	sem := make(chan struct{}, n)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			h.ServeHTTP(w, r)
			return
		}
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			h.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: "request budget exhausted, retry later"})
		}
	})
}

// serveHandler is the HTTP surface over one backend.
type serveHandler struct {
	db       backend
	readonly bool
	maxBody  int64
}

// serveOption tweaks the handler outside the test-friendly defaults.
type serveOption func(*serveHandler)

// withMaxBody bounds accepted request bodies (default 1 MiB).
func withMaxBody(n int64) serveOption {
	return func(s *serveHandler) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// newServeHandler builds the endpoint mux; split out of cmdServe so tests
// can drive it through httptest without binding a port.
func newServeHandler(db backend, readonly bool, opts ...serveOption) http.Handler {
	s := &serveHandler{db: db, readonly: readonly, maxBody: 1 << 20}
	for _, o := range opts {
		o(s)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/estimate", s.handleEstimate)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/insert", s.handleInsert)
	mux.HandleFunc("/delete", s.handleDelete)
	mux.HandleFunc("/flush", s.handleFlush)
	mux.HandleFunc("/reload", s.handleReload)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// apiRequest is the JSON request body of /query, /estimate and /explain.
type apiRequest struct {
	SQL string `json:"sql"`
	// Params bind `?` placeholders in order; numbers or strings.
	Params []any `json:"params,omitempty"`
	// Confidence overrides the interval level for this request.
	Confidence float64 `json:"confidence,omitempty"`
}

type apiGroup struct {
	Key      []float64 `json:"key,omitempty"`
	Labels   []string  `json:"labels,omitempty"`
	Value    float64   `json:"value"`
	Variance float64   `json:"variance"`
	CILow    float64   `json:"ci_low"`
	CIHigh   float64   `json:"ci_high"`
}

type apiError struct {
	Error string `json:"error"`
}

// decodeRequest accepts a POSTed JSON body (bounded by -max-body) or a GET
// with ?sql=.
func (s *serveHandler) decodeRequest(w http.ResponseWriter, r *http.Request) (apiRequest, bool) {
	var req apiRequest
	switch r.Method {
	case http.MethodGet:
		req.SQL = r.URL.Query().Get("sql")
	case http.MethodPost:
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid JSON body: " + err.Error()})
			return req, false
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "use GET with ?sql= or POST a JSON body"})
		return req, false
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "missing sql"})
		return req, false
	}
	if req.Confidence != 0 && (req.Confidence <= 0 || req.Confidence >= 1) {
		writeJSON(w, http.StatusBadRequest,
			apiError{Error: fmt.Sprintf("confidence must be in (0, 1), got %v", req.Confidence)})
		return req, false
	}
	return req, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// execOpts converts the request's per-call options.
func (req apiRequest) execOpts() []deepdb.ExecOption {
	if req.Confidence > 0 {
		return []deepdb.ExecOption{deepdb.AtConfidence(req.Confidence)}
	}
	return nil
}

// paramArgs merges params and options into a Stmt.Exec argument list.
func (req apiRequest) paramArgs() []any {
	args := append([]any(nil), req.Params...)
	for _, o := range req.execOpts() {
		args = append(args, o)
	}
	return args
}

// streamFlushRows is how many streamed result rows are written between
// flushes of the chunked response.
const streamFlushRows = 256

func (s *serveHandler) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	start := time.Now()
	if len(req.Params) == 0 {
		s.streamQuery(w, r, req, start)
		return
	}
	var res deepdb.Result
	stmt, err := s.db.Prepare(req.SQL)
	if err == nil {
		res, err = stmt.Exec(r.Context(), req.paramArgs()...)
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	groups := make([]apiGroup, 0, len(res.Groups))
	for _, g := range res.Groups {
		groups = append(groups, apiGroup{Key: g.Key, Labels: g.Labels,
			Value: g.Value, Variance: g.Variance, CILow: g.CILow, CIHigh: g.CIHigh})
	}
	writeJSON(w, http.StatusOK, struct {
		Groups    []apiGroup `json:"groups"`
		ElapsedUS int64      `json:"elapsed_us"`
	}{groups, time.Since(start).Microseconds()})
}

// streamQuery answers the parameterless /query path through the streaming
// read API: grouped results are evaluated chunk by chunk and their rows
// written (and flushed) incrementally, so a GROUP BY over millions of keys
// is served in bounded memory instead of being materialized in the
// response buffer. The bytes written are identical to the buffered path's
// encoding of the same result — same field order, same escaping, same
// trailing newline — with elapsed_us stamped at stream end. Ungrouped
// queries execute eagerly inside QueryRows (keeping their result-cache
// benefit) and emit their single row the same way.
//
// An execution error after rows have streamed cannot change the status
// code anymore; the object is closed with an "error" member instead of
// elapsed_us, which also leaves the JSON well-formed for the client.
func (s *serveHandler) streamQuery(w http.ResponseWriter, r *http.Request, req apiRequest, start time.Time) {
	rows, err := s.db.QueryRows(r.Context(), req.SQL, req.execOpts()...)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	io.WriteString(w, `{"groups":[`) //nolint:errcheck // client gone = write errors, nothing to do
	n := 0
	for rows.Next() {
		g := rows.Row()
		if n > 0 {
			io.WriteString(w, ",") //nolint:errcheck
		}
		buf.Reset()
		//nolint:errcheck // encoding to a bytes.Buffer cannot fail for this type
		enc.Encode(apiGroup{Key: g.Key, Labels: g.Labels,
			Value: g.Value, Variance: g.Variance, CILow: g.CILow, CIHigh: g.CIHigh})
		w.Write(bytes.TrimSuffix(buf.Bytes(), []byte("\n"))) //nolint:errcheck
		n++
		if n%streamFlushRows == 0 && flusher != nil {
			flusher.Flush()
		}
	}
	if err := rows.Err(); err != nil {
		buf.Reset()
		enc.Encode(err.Error()) //nolint:errcheck
		fmt.Fprintf(w, `],"error":%s}`+"\n", bytes.TrimSuffix(buf.Bytes(), []byte("\n")))
		return
	}
	fmt.Fprintf(w, `],"elapsed_us":%d}`+"\n", time.Since(start).Microseconds())
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *serveHandler) handleEstimate(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	start := time.Now()
	var est deepdb.Estimate
	var err error
	if len(req.Params) > 0 {
		var stmt *deepdb.Stmt
		stmt, err = s.db.Prepare(req.SQL)
		if err == nil {
			est, err = stmt.Estimate(r.Context(), req.paramArgs()...)
		}
	} else {
		est, err = s.db.EstimateCardinality(r.Context(), req.SQL, req.execOpts()...)
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Value     float64 `json:"value"`
		Variance  float64 `json:"variance"`
		CILow     float64 `json:"ci_low"`
		CIHigh    float64 `json:"ci_high"`
		ElapsedUS int64   `json:"elapsed_us"`
	}{est.Value, est.Variance, est.CILow, est.CIHigh, time.Since(start).Microseconds()})
}

func (s *serveHandler) handleExplain(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	plan, err := s.db.Explain(r.Context(), req.SQL)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Plan string `json:"plan"`
	}{plan})
}

// mutationRequest is the JSON body of /insert and /delete.
type mutationRequest struct {
	Table string `json:"table"`
	// Values holds the inserted row (insert): JSON numbers pass through,
	// strings resolve through the column's dictionary, null becomes NULL.
	Values map[string]any `json:"values,omitempty"`
	// PK locates the deleted row (delete). A pointer so a request that
	// forgot the field is rejected instead of silently targeting pk 0.
	PK *float64 `json:"pk,omitempty"`
}

// rejectMutation enforces -readonly and the POST method on the mutation
// endpoints.
func (s *serveHandler) rejectMutation(w http.ResponseWriter, r *http.Request) bool {
	if s.readonly {
		writeJSON(w, http.StatusForbidden, apiError{Error: "server is readonly"})
		return true
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "POST a JSON body"})
		return true
	}
	return false
}

func (s *serveHandler) decodeMutation(w http.ResponseWriter, r *http.Request) (mutationRequest, bool) {
	var req mutationRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid JSON body: " + err.Error()})
		return req, false
	}
	if req.Table == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "missing table"})
		return req, false
	}
	return req, true
}

type mutationResponse struct {
	Queued     bool   `json:"queued"`
	Generation uint64 `json:"generation"`
}

func (s *serveHandler) handleInsert(w http.ResponseWriter, r *http.Request) {
	if s.rejectMutation(w, r) {
		return
	}
	req, ok := s.decodeMutation(w, r)
	if !ok {
		return
	}
	meta := s.db.Schema().Table(req.Table)
	if meta == nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("unknown table %s", req.Table)})
		return
	}
	values := make(map[string]deepdb.Value, len(req.Values))
	for col, v := range req.Values {
		// Reject unknown columns here: the apply path silently NULLs
		// missing ones, so a typo would otherwise insert an all-NULL row
		// and report success.
		if _, ok := meta.Column(col); !ok {
			writeJSON(w, http.StatusBadRequest,
				apiError{Error: fmt.Sprintf("table %s has no column %s", req.Table, col)})
			return
		}
		switch x := v.(type) {
		case nil:
			values[col] = deepdb.Null()
		case float64:
			values[col] = deepdb.Float(x)
		case string:
			code, err := s.db.ResolveLabel(col, x)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
				return
			}
			values[col] = deepdb.Float(code)
		default:
			writeJSON(w, http.StatusBadRequest,
				apiError{Error: fmt.Sprintf("column %s: unsupported value %v (use a number, string or null)", col, v)})
			return
		}
	}
	if err := s.db.Insert(req.Table, values); err != nil {
		s.writeMutationErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, mutationResponse{Queued: true, Generation: s.db.Generation()})
}

// writeMutationErr maps backpressure to 429 + Retry-After (the update
// queue is full and the backend shed instead of blocking — the client
// should back off and retry), lost WAL durability to 503 (the fail-stop
// policy rejects writes until the process is restarted on a healthy disk;
// reads keep serving), and everything else to 400.
func (s *serveHandler) writeMutationErr(w http.ResponseWriter, err error) {
	if errors.Is(err, deepdb.ErrQueueFull) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
		return
	}
	if errors.Is(err, deepdb.ErrDurabilityLost) {
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
}

func (s *serveHandler) handleDelete(w http.ResponseWriter, r *http.Request) {
	if s.rejectMutation(w, r) {
		return
	}
	req, ok := s.decodeMutation(w, r)
	if !ok {
		return
	}
	if s.db.Schema().Table(req.Table) == nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("unknown table %s", req.Table)})
		return
	}
	if req.PK == nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "missing pk"})
		return
	}
	if err := s.db.Delete(req.Table, *req.PK); err != nil {
		s.writeMutationErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, mutationResponse{Queued: true, Generation: s.db.Generation()})
}

// handleReload hot-swaps the serving model with the file named in the
// request body, through the snapshot-publication path: zero read downtime,
// and on a sharded backend all-old-or-all-new generation consistency.
// Allowed under -readonly — a model swap is an operator action, not a data
// mutation.
func (s *serveHandler) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "POST a JSON body"})
		return
	}
	var req struct {
		Model string `json:"model"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid JSON body: " + err.Error()})
		return
	}
	if req.Model == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "missing model"})
		return
	}
	if err := s.db.Reload(req.Model); err != nil {
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Reloaded   bool   `json:"reloaded"`
		Generation uint64 `json:"generation"`
	}{true, s.db.Generation()})
}

// handleFlush blocks until every mutation accepted before the request is
// applied and published, delivering deferred apply errors — the
// read-your-writes barrier for HTTP clients.
func (s *serveHandler) handleFlush(w http.ResponseWriter, r *http.Request) {
	if s.rejectMutation(w, r) {
		return
	}
	if err := s.db.Flush(r.Context()); err != nil {
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Flushed    bool   `json:"flushed"`
		Generation uint64 `json:"generation"`
	}{true, s.db.Generation()})
}

// apiUpdateStats mirrors deepdb.UpdateStats in JSON.
type apiUpdateStats struct {
	Generation      uint64 `json:"generation"`
	SyncUpdates     bool   `json:"sync_updates"`
	QueueDepth      int    `json:"queue_depth"`
	Enqueued        uint64 `json:"enqueued"`
	Applied         uint64 `json:"applied"`
	Batches         uint64 `json:"batches"`
	Errors          uint64 `json:"errors"`
	LastError       string `json:"last_error,omitempty"`
	LastBatch       int    `json:"last_batch"`
	LastApplyMicros int64  `json:"last_apply_us"`
	ApplyLagMicros  int64  `json:"apply_lag_us"`
	// WAL is present only when the server runs with -wal. DurabilityLost
	// reports a failed WAL: writes 503 under the fail-stop policy, or are
	// volatile under degrade-volatile; either way /healthz flips to
	// "degraded".
	WAL            *apiWALStats `json:"wal,omitempty"`
	DurabilityLost bool         `json:"durability_lost,omitempty"`
	LastWALError   string       `json:"last_wal_error,omitempty"`
	// Plan- and result-cache observability: lookup counters and current
	// entry counts (see the README's cache invalidation table).
	PlanCacheHits        uint64 `json:"plan_cache_hits"`
	PlanCacheMisses      uint64 `json:"plan_cache_misses"`
	PlanCacheSize        int    `json:"plan_cache_size"`
	ResultCacheHits      uint64 `json:"result_cache_hits"`
	ResultCacheMisses    uint64 `json:"result_cache_misses"`
	ResultCacheEvictions uint64 `json:"result_cache_evictions"`
	ResultCacheSize      int    `json:"result_cache_size"`
	// Drift is present when base tables are attached; one entry per
	// ensemble member.
	Drift            []apiDriftStat `json:"drift,omitempty"`
	Relearns         uint64         `json:"relearns"`
	RelearnErrors    uint64         `json:"relearn_errors"`
	LastRelearnError string         `json:"last_relearn_error,omitempty"`
}

// apiWALStats mirrors deepdb.WALStats in JSON.
type apiWALStats struct {
	Dir               string `json:"dir"`
	Durability        string `json:"durability"`
	LastLSN           uint64 `json:"last_lsn"`
	AppliedLSN        uint64 `json:"applied_lsn"`
	CheckpointLSN     uint64 `json:"checkpoint_lsn"`
	Appended          uint64 `json:"appended"`
	Synced            uint64 `json:"synced"`
	Replayed          uint64 `json:"replayed"`
	TruncatedSegments uint64 `json:"truncated_segments"`
	Segments          int    `json:"segments"`
	SizeBytes         int64  `json:"size_bytes"`
}

// apiDriftStat mirrors deepdb.DriftStat in JSON.
type apiDriftStat struct {
	Tables          []string `json:"tables"`
	Mutated         uint64   `json:"mutated"`
	MutatedFraction float64  `json:"mutated_fraction"`
	MaxShift        float64  `json:"max_shift"`
	ShiftColumn     string   `json:"shift_column,omitempty"`
	Relearns        uint64   `json:"relearns"`
}

// apiShardStat is one shard's health inside /healthz (sharded backends
// only).
type apiShardStat struct {
	ID            int          `json:"id"`
	Members       []int        `json:"members"`
	Generation    uint64       `json:"generation"`
	Ops           uint64       `json:"ops"`
	QueueDepth    int          `json:"queue_depth"`
	Enqueued      uint64       `json:"enqueued"`
	Applied       uint64       `json:"applied"`
	Errors        uint64       `json:"errors"`
	LastError     string       `json:"last_error,omitempty"`
	WALAppliedLSN uint64       `json:"wal_applied_lsn,omitempty"`
	WAL           *apiWALStats `json:"wal,omitempty"`
	Peer          string       `json:"peer,omitempty"`
	// Peer binding health (only with -shard-peers): breaker position,
	// request/probe outcome counters, most recent failure.
	PeerHealthy   bool   `json:"peer_healthy,omitempty"`
	PeerState     string `json:"peer_state,omitempty"`
	PeerOK        uint64 `json:"peer_ok,omitempty"`
	PeerFailed    uint64 `json:"peer_failed,omitempty"`
	PeerLastError string `json:"peer_last_error,omitempty"`
}

func (s *serveHandler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.db.UpdateStats()
	var shardsOut []apiShardStat
	var peerHits, peerFalls uint64
	if sh, ok := s.db.(sharded); ok {
		for _, ss := range sh.ShardStats() {
			shardsOut = append(shardsOut, apiShardStat{
				ID:            ss.ID,
				Members:       ss.Members,
				Generation:    ss.Generation,
				Ops:           ss.Ops,
				QueueDepth:    ss.QueueDepth,
				Enqueued:      ss.Enqueued,
				Applied:       ss.Applied,
				Errors:        ss.Errors,
				LastError:     ss.LastError,
				WALAppliedLSN: ss.WALAppliedLSN,
				WAL:           apiWAL(ss.WAL),
				Peer:          ss.Peer,
				PeerHealthy:   ss.PeerHealthy,
				PeerState:     ss.PeerState,
				PeerOK:        ss.PeerOK,
				PeerFailed:    ss.PeerFailed,
				PeerLastError: ss.PeerLastError,
			})
		}
		peerHits, peerFalls = sh.PeerStats()
	}
	status := "ok"
	if st.DurabilityLost {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, struct {
		Status       string         `json:"status"`
		Models       int            `json:"models"`
		Tables       int            `json:"tables"`
		DataAttached bool           `json:"data_attached"`
		Readonly     bool           `json:"readonly"`
		Shards       []apiShardStat `json:"shards,omitempty"`
		PeerHits     uint64         `json:"peer_hits,omitempty"`
		PeerFalls    uint64         `json:"peer_fallbacks,omitempty"`
		Updates      apiUpdateStats `json:"updates"`
	}{
		Status:       status,
		Models:       len(s.db.Models()),
		Tables:       len(s.db.Schema().Tables),
		DataAttached: s.db.Data() != nil,
		Readonly:     s.readonly,
		Shards:       shardsOut,
		PeerHits:     peerHits,
		PeerFalls:    peerFalls,
		Updates: apiUpdateStats{
			Generation:           st.Generation,
			SyncUpdates:          st.SyncUpdates,
			QueueDepth:           st.QueueDepth,
			Enqueued:             st.Enqueued,
			Applied:              st.Applied,
			Batches:              st.Batches,
			Errors:               st.Errors,
			LastError:            st.LastError,
			LastBatch:            st.LastBatch,
			LastApplyMicros:      st.LastApplyDuration.Microseconds(),
			ApplyLagMicros:       st.ApplyLag.Microseconds(),
			WAL:                  apiWAL(st.WAL),
			DurabilityLost:       st.DurabilityLost,
			LastWALError:         st.LastWALError,
			PlanCacheHits:        st.PlanCacheHits,
			PlanCacheMisses:      st.PlanCacheMisses,
			PlanCacheSize:        st.PlanCacheSize,
			ResultCacheHits:      st.ResultCacheHits,
			ResultCacheMisses:    st.ResultCacheMisses,
			ResultCacheEvictions: st.ResultCacheEvictions,
			ResultCacheSize:      st.ResultCacheSize,
			Drift:                apiDrift(st.Drift),
			Relearns:             st.Relearns,
			RelearnErrors:        st.RelearnErrors,
			LastRelearnError:     st.LastRelearnError,
		},
	})
}

func apiWAL(w *deepdb.WALStats) *apiWALStats {
	if w == nil {
		return nil
	}
	return &apiWALStats{
		Dir:               w.Dir,
		Durability:        w.Durability,
		LastLSN:           w.LastLSN,
		AppliedLSN:        w.AppliedLSN,
		CheckpointLSN:     w.CheckpointLSN,
		Appended:          w.Appended,
		Synced:            w.Synced,
		Replayed:          w.Replayed,
		TruncatedSegments: w.TruncatedSegments,
		Segments:          w.Segments,
		SizeBytes:         w.SizeBytes,
	}
}

func apiDrift(ds []deepdb.DriftStat) []apiDriftStat {
	out := make([]apiDriftStat, 0, len(ds))
	for _, d := range ds {
		out = append(out, apiDriftStat{
			Tables:          d.Tables,
			Mutated:         d.Mutated,
			MutatedFraction: d.MutatedFraction,
			MaxShift:        d.MaxShift,
			ShiftColumn:     d.ShiftColumn,
			Relearns:        d.Relearns,
		})
	}
	return out
}
