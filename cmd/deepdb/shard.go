package main

// shard.go implements `deepdb shard`: one shard replica process. It loads
// the same model file as the router, derives the identical deterministic
// partition, and serves its shard's members over the binary /eval
// interface (plus /apply for the router's mutation broadcast, /flush and
// /healthz). Replicas are a pure offload: the router holds the full model
// locally and falls back to local evaluation on any replica failure, so a
// replica can be killed, restarted or lag behind without affecting
// correctness — only the share of work answered remotely.
//
//	deepdb shard -model model.deepdb -shards 4 -index 2 -addr :9303
//
// must use the same -model and -shards as the router (`deepdb serve
// -shards 4 -shard-peers ...`); -index selects which partition this
// process owns. Pass -data to enable mutation application (the router
// forwards its broadcast to /apply), -wal for a durable per-replica log.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/deepdb"
	"repro/internal/ensemble"
	"repro/internal/shard"
	"repro/internal/wal"
)

func cmdShard(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	model := fs.String("model", "model.deepdb", "model file from deepdb learn (same file the router serves)")
	addr := fs.String("addr", ":9301", "listen address (give this URL to the router's -shard-peers)")
	nshards := fs.Int("shards", 1, "total partition count (must match the router's -shards)")
	index := fs.Int("index", 0, "which shard this process owns (0-based)")
	dataDir := fs.String("data", "", "optional data directory; required for /apply (mutation replication)")
	walDir := fs.String("wal", "", "write-ahead log directory for this replica's accepted mutations")
	durability := fs.String("durability", "batched", "WAL fsync policy: sync, batched or off (needs -wal)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, ok := deepdb.ParseDurability(*durability)
	if !ok {
		return fmt.Errorf("unknown -durability %q (want sync, batched or off)", *durability)
	}
	ens, err := ensemble.LoadFile(*model, nil)
	if err != nil {
		return err
	}
	if *dataDir != "" {
		data, err := deepdb.LoadCSVDir(ens.Schema, *dataDir)
		if err != nil {
			return err
		}
		if err := ens.AttachTables(data); err != nil {
			return err
		}
	}
	members := shard.Partition(ens, *nshards)
	if *index < 0 || *index >= len(members) {
		return fmt.Errorf("-index %d out of range: partitioning into %d shards produced %d (ensemble has %d members)",
			*index, *nshards, len(members), len(ens.RSPNs))
	}
	var wd wal.Durability
	switch d {
	case deepdb.DurabilitySync:
		wd = wal.Sync
	case deepdb.DurabilityOff:
		wd = wal.Off
	default:
		wd = wal.Batched
	}
	cfg := shard.Config{WALDir: *walDir, Durability: wd}
	sh, err := shard.New(*index, members[*index], ens, cfg)
	if err != nil {
		return err
	}
	defer sh.Close()
	srv := &http.Server{Addr: *addr, Handler: shard.NewServer(sh)}
	sigCtx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-sigCtx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		done <- srv.Shutdown(shutCtx)
	}()
	fmt.Printf("deepdb: shard %d/%d (members %v) serving %s on %s\n",
		*index, len(members), members[*index], *model, *addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-done
}
