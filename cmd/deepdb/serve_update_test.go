package main

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/deepdb"
)

// attachedFixture learns the serve fixture's schema with data attached, so
// the mutation endpoints work.
func attachedFixture(t testing.TB) *deepdb.DB {
	t.Helper()
	ctx := context.Background()
	s := &deepdb.Schema{Tables: []*deepdb.TableDef{
		{
			Name:       "customer",
			PrimaryKey: "c_id",
			Columns: []deepdb.ColumnDef{
				{Name: "c_id", Kind: deepdb.IntKind},
				{Name: "c_age", Kind: deepdb.IntKind},
				{Name: "c_region", Kind: deepdb.CategoricalKind},
			},
		},
		{
			Name:       "orders",
			PrimaryKey: "o_id",
			Columns: []deepdb.ColumnDef{
				{Name: "o_id", Kind: deepdb.IntKind},
				{Name: "o_c_id", Kind: deepdb.IntKind},
				{Name: "o_amount", Kind: deepdb.FloatKind},
			},
			ForeignKeys: []deepdb.ForeignKey{{Column: "o_c_id", RefTable: "customer", RefColumn: "c_id"}},
		},
	}}
	cust := deepdb.NewTable(s.Table("customer"))
	ord := deepdb.NewTable(s.Table("orders"))
	region := cust.Column("c_region")
	regions := []string{"EU", "ASIA", "US"}
	oid := 0
	for i := 0; i < 800; i++ {
		cust.AppendRow(deepdb.Int(i), deepdb.Int(18+(i*7)%60),
			deepdb.Float(float64(region.Encode(regions[i%3]))))
		for k := 0; k <= i%2; k++ {
			ord.AppendRow(deepdb.Int(oid), deepdb.Int(i), deepdb.Float(float64(10+(oid*13)%90)))
			oid++
		}
	}
	db, err := deepdb.LearnDataset(ctx, s, deepdb.Dataset{"customer": cust, "orders": ord},
		deepdb.WithMaxSamples(2000), deepdb.WithSingleTableOnly())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func pkOf(v float64) *float64 { return &v }

type flushResp struct {
	Flushed    bool   `json:"flushed"`
	Generation uint64 `json:"generation"`
	Error      string `json:"error"`
}

type healthResp struct {
	Status       string `json:"status"`
	DataAttached bool   `json:"data_attached"`
	Readonly     bool   `json:"readonly"`
	Updates      struct {
		Generation uint64 `json:"generation"`
		QueueDepth int    `json:"queue_depth"`
		Enqueued   uint64 `json:"enqueued"`
		Applied    uint64 `json:"applied"`
		Batches    uint64 `json:"batches"`
		Errors     uint64 `json:"errors"`
	} `json:"updates"`
}

// TestServeUpdateEndpoints drives /insert (numbers, strings, null),
// /delete, /flush and the update stats in /healthz end to end.
func TestServeUpdateEndpoints(t *testing.T) {
	db := attachedFixture(t)
	srv := httptest.NewServer(newServeHandler(db, false))
	defer srv.Close()
	ctx := context.Background()

	before, err := db.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}

	var mr mutationResponse
	if code := postJSON(t, srv, "/insert", mutationRequest{
		Table:  "orders",
		Values: map[string]any{"o_id": 900001.0, "o_c_id": 1.0, "o_amount": 55.5},
	}, &mr); code != http.StatusAccepted || !mr.Queued {
		t.Fatalf("insert: status %d, %+v", code, mr)
	}
	// A string value resolves through the dictionary; an unknown one 400s.
	if code := postJSON(t, srv, "/insert", mutationRequest{
		Table:  "customer",
		Values: map[string]any{"c_id": 900002.0, "c_age": nil, "c_region": "EU"},
	}, &mr); code != http.StatusAccepted {
		t.Fatalf("string insert: status %d, %+v", code, mr)
	}
	var apiErr apiError
	if code := postJSON(t, srv, "/insert", mutationRequest{
		Table:  "customer",
		Values: map[string]any{"c_id": 900003.0, "c_region": "ATLANTIS"},
	}, &apiErr); code != http.StatusBadRequest || !strings.Contains(apiErr.Error, "ATLANTIS") {
		t.Fatalf("unknown label insert: status %d, %+v", code, apiErr)
	}
	// A typoed column must 400, not silently insert an all-NULL row.
	if code := postJSON(t, srv, "/insert", mutationRequest{
		Table:  "orders",
		Values: map[string]any{"o_ammount": 50.0},
	}, &apiErr); code != http.StatusBadRequest || !strings.Contains(apiErr.Error, "o_ammount") {
		t.Fatalf("unknown column insert: status %d, %+v", code, apiErr)
	}
	if code := postJSON(t, srv, "/insert", mutationRequest{
		Table: "nope", Values: map[string]any{"x": 1.0},
	}, &apiErr); code != http.StatusBadRequest || !strings.Contains(apiErr.Error, "unknown table") {
		t.Fatalf("unknown table insert: status %d, %+v", code, apiErr)
	}
	if code := postJSON(t, srv, "/delete", mutationRequest{Table: "orders", PK: pkOf(0)}, &mr); code != http.StatusAccepted {
		t.Fatalf("delete: status %d, %+v", code, mr)
	}
	// A delete without pk must be rejected, not target pk 0; a typo'd
	// table must fail here, not as a deferred flush error.
	if code := postJSON(t, srv, "/delete", mutationRequest{Table: "orders"}, &apiErr); code != http.StatusBadRequest ||
		!strings.Contains(apiErr.Error, "missing pk") {
		t.Fatalf("pk-less delete: status %d, %+v", code, apiErr)
	}
	if code := postJSON(t, srv, "/delete", mutationRequest{Table: "order", PK: pkOf(1)}, &apiErr); code != http.StatusBadRequest ||
		!strings.Contains(apiErr.Error, "unknown table") {
		t.Fatalf("unknown-table delete: status %d, %+v", code, apiErr)
	}

	var fr flushResp
	if code := postJSON(t, srv, "/flush", struct{}{}, &fr); code != http.StatusOK || !fr.Flushed {
		t.Fatalf("flush: status %d, %+v", code, fr)
	}
	if fr.Generation == 0 {
		t.Fatal("flush reported generation 0 after mutations")
	}

	// Net effect on orders: +1 insert, -1 delete -> unchanged count; the
	// customer insert grew that table.
	after, err := db.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after.Scalar()-before.Scalar()) > 1e-6 {
		t.Fatalf("orders count %v -> %v, want unchanged", before.Scalar(), after.Scalar())
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthResp
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !health.DataAttached || health.Readonly {
		t.Fatalf("healthz = %+v", health)
	}
	if health.Updates.Enqueued != 3 || health.Updates.Applied != 3 ||
		health.Updates.Batches == 0 || health.Updates.QueueDepth != 0 {
		t.Fatalf("healthz updates = %+v", health.Updates)
	}
	if health.Updates.Generation != fr.Generation {
		t.Fatalf("healthz generation %d != flush generation %d", health.Updates.Generation, fr.Generation)
	}

	// A flush after a failing apply surfaces the deferred error.
	if code := postJSON(t, srv, "/delete", mutationRequest{Table: "orders", PK: pkOf(123456789)}, &mr); code != http.StatusAccepted {
		t.Fatalf("bogus delete: status %d", code)
	}
	if code := postJSON(t, srv, "/flush", struct{}{}, &apiErr); code != http.StatusConflict ||
		!strings.Contains(apiErr.Error, "no row with pk") {
		t.Fatalf("flush after bad delete: status %d, %+v", code, apiErr)
	}
}

// TestServeReadonly: -readonly rejects every mutation endpoint with 403
// while queries keep working.
func TestServeReadonly(t *testing.T) {
	db := serveFixture(t)
	srv := httptest.NewServer(newServeHandler(db, true))
	defer srv.Close()

	for _, path := range []string{"/insert", "/delete", "/flush"} {
		var apiErr apiError
		if code := postJSON(t, srv, path, mutationRequest{Table: "orders"}, &apiErr); code != http.StatusForbidden {
			t.Fatalf("%s: status %d, want 403", path, code)
		}
	}
	var est estimateResp
	if code := postJSON(t, srv, "/estimate",
		apiRequest{SQL: "SELECT COUNT(*) FROM customer WHERE c_age >= 40"}, &est); code != http.StatusOK {
		t.Fatalf("readonly estimate: status %d, error %q", code, est.Error)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthResp
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !health.Readonly {
		t.Fatal("healthz does not report readonly")
	}
}

// TestServeMutationWithoutData: mutations on a data-free server fail with
// a clear error instead of queueing something unappliable.
func TestServeMutationWithoutData(t *testing.T) {
	db := serveFixture(t)
	srv := httptest.NewServer(newServeHandler(db, false))
	defer srv.Close()
	var apiErr apiError
	if code := postJSON(t, srv, "/insert", mutationRequest{
		Table: "orders", Values: map[string]any{"o_id": 1.0},
	}, &apiErr); code != http.StatusBadRequest || !strings.Contains(apiErr.Error, "no base tables") {
		t.Fatalf("insert without data: status %d, %+v", code, apiErr)
	}
}
