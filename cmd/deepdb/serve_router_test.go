package main

// serve_router_test.go covers the serving-tier hardening added with the
// sharded router: body-size bounds, in-flight load shedding, backpressure
// mapping to 429 + Retry-After, the /reload hot-swap endpoint, and the
// router-vs-single HTTP equivalence (the same model answers identically
// whether it serves as one process or as a sharded backend).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/deepdb"
)

func TestWriteMutationErrBackpressure(t *testing.T) {
	s := &serveHandler{}
	rec := httptest.NewRecorder()
	s.writeMutationErr(rec, fmt.Errorf("wrapped: %w", deepdb.ErrQueueFull))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queue-full status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After gives clients no backoff hint")
	}
	rec = httptest.NewRecorder()
	s.writeMutationErr(rec, errors.New("unknown column"))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("plain error status = %d, want 400", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "" {
		t.Fatal("a 400 must not carry Retry-After — retrying cannot fix it")
	}
}

func TestInflightLimiterSheds(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(withInflightLimit(inner, 1))
	defer srv.Close()
	defer close(release)

	firstDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/query")
		if err == nil {
			resp.Body.Close()
		}
		firstDone <- err
	}()
	<-entered // the single slot is now held

	resp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second in-flight request got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	// Health stays observable under exactly this overload.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz got %d under load, want 200", hresp.StatusCode)
	}
	release <- struct{}{}
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
}

func TestMaxBodyBoundsRequests(t *testing.T) {
	db := serveFixture(t)
	defer db.Close()
	srv := httptest.NewServer(newServeHandler(db, false, withMaxBody(64)))
	defer srv.Close()

	big := fmt.Sprintf(`{"sql": %q}`, "SELECT COUNT(*) FROM customer WHERE "+strings.Repeat("c_age > 1 AND ", 50)+"c_age > 1")
	resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader([]byte(big)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body got %d, want 400", resp.StatusCode)
	}
	// A request under the bound still works.
	resp, err = http.Post(srv.URL+"/query", "application/json",
		bytes.NewReader([]byte(`{"sql":"SELECT COUNT(*) FROM customer"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body got %d, want 200", resp.StatusCode)
	}
}

func TestReloadEndpoint(t *testing.T) {
	db := serveFixture(t)
	defer db.Close()
	path := filepath.Join(t.TempDir(), "next.deepdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServeHandler(db, true /* readonly: reload is an operator action */))
	defer srv.Close()

	genBefore := db.Generation()
	var ok struct {
		Reloaded   bool   `json:"reloaded"`
		Generation uint64 `json:"generation"`
	}
	if code := postJSON(t, srv, "/reload", map[string]string{"model": path}, &ok); code != http.StatusOK {
		t.Fatalf("reload got %d, want 200", code)
	}
	if !ok.Reloaded || ok.Generation <= genBefore {
		t.Fatalf("reload response %+v with prior generation %d", ok, genBefore)
	}
	var apiErr apiError
	if code := postJSON(t, srv, "/reload", map[string]string{"model": filepath.Join(t.TempDir(), "missing.deepdb")}, &apiErr); code != http.StatusConflict {
		t.Fatalf("missing model got %d, want 409 (old model keeps serving)", code)
	}
	if code := postJSON(t, srv, "/reload", map[string]string{}, &apiErr); code != http.StatusBadRequest {
		t.Fatalf("empty model got %d, want 400", code)
	}
	// The failed reloads above must not have torn down serving.
	resp, err := http.Get(srv.URL + "/query?sql=" + "SELECT%20COUNT(*)%20FROM%20customer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after failed reload got %d, want 200", resp.StatusCode)
	}
}

// TestShardedServeEquivalence drives the same model file through the
// single-process backend and the sharded router behind the identical HTTP
// surface: every response must decode to exactly equal values, and
// /healthz must expose per-shard health on the sharded flavor.
func TestShardedServeEquivalence(t *testing.T) {
	ctx := context.Background()
	db := serveFixture(t)
	defer db.Close()
	path := filepath.Join(t.TempDir(), "model.deepdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	sdb, err := deepdb.OpenSharded(ctx, path, deepdb.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()

	one := httptest.NewServer(newServeHandler(db, false))
	defer one.Close()
	many := httptest.NewServer(newServeHandler(sdb, false))
	defer many.Close()

	for _, req := range []apiRequest{
		{SQL: "SELECT COUNT(*) FROM customer WHERE c_age < 40"},
		{SQL: "SELECT COUNT(*) FROM customer JOIN orders WHERE o_amount >= 50 AND c_age < 40"},
		{SQL: "SELECT COUNT(*) FROM customer GROUP BY c_region"},
		{SQL: "SELECT AVG(o_amount) FROM orders WHERE o_amount >= ?", Params: []any{30}},
		{SQL: "SELECT COUNT(*) FROM customer WHERE c_region = 'EU'"},
	} {
		var a, b queryResp
		codeA := postJSON(t, one, "/query", req, &a)
		codeB := postJSON(t, many, "/query", req, &b)
		if codeA != http.StatusOK || codeB != http.StatusOK {
			t.Fatalf("%s: statuses %d / %d (errors %q / %q)", req.SQL, codeA, codeB, a.Error, b.Error)
		}
		a.ElapsedUS, b.ElapsedUS = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s diverged across backends:\n  single:  %+v\n  sharded: %+v", req.SQL, a, b)
		}
		var ea, eb estimateResp
		codeA = postJSON(t, one, "/estimate", req, &ea)
		codeB = postJSON(t, many, "/estimate", req, &eb)
		if codeA != http.StatusOK || codeB != http.StatusOK {
			t.Fatalf("%s estimate: statuses %d / %d", req.SQL, codeA, codeB)
		}
		ea.ElapsedUS, eb.ElapsedUS = 0, 0
		if ea != eb {
			t.Fatalf("%s estimate diverged:\n  single:  %+v\n  sharded: %+v", req.SQL, ea, eb)
		}
	}

	var health struct {
		Status string `json:"status"`
		Shards []struct {
			ID      int   `json:"id"`
			Members []int `json:"members"`
		} `json:"shards"`
	}
	resp, err := http.Get(many.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || len(health.Shards) != 2 {
		t.Fatalf("sharded /healthz = %+v, want status ok with 2 shards", health)
	}
	for _, sh := range health.Shards {
		if len(sh.Members) == 0 {
			t.Fatalf("shard %d reports no members: %+v", sh.ID, health)
		}
	}
}
