package main

// serve_stream_test.go pins the wire contract of the streaming /query
// path: the bytes a parameterless (streamed) request produces must be
// identical to the buffered encoder's output for the same result — same
// field order, same escaping, same framing — except for the trailing
// elapsed_us measurement, and the stream must actually go out chunked.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// rawPost posts a JSON body and returns the raw response bytes.
func rawPost(t *testing.T, srv *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// stripElapsed cuts a /query response off at its elapsed_us member, which
// legitimately differs per request; everything before it must match.
func stripElapsed(t *testing.T, raw []byte) string {
	t.Helper()
	i := bytes.LastIndex(raw, []byte(`,"elapsed_us":`))
	if i < 0 {
		t.Fatalf("response missing elapsed_us: %s", raw)
	}
	return string(raw[:i])
}

// TestServeQueryStreamedMatchesBuffered compares every query class across
// the two /query execution paths: parameterless requests stream row by
// row, parameterized requests buffer through the prepared-statement path.
// The same logical query must produce identical bytes either way.
func TestServeQueryStreamedMatchesBuffered(t *testing.T) {
	db := serveFixture(t)
	srv := httptest.NewServer(newServeHandler(db, false))
	defer srv.Close()

	cases := []struct {
		name     string
		streamed string // literal SQL, runs the streaming path
		buffered string // same query as a template + params, runs buffered
	}{
		{
			"grouped-count",
			`{"sql": "SELECT COUNT(*) FROM customer WHERE c_age >= 30 GROUP BY c_region"}`,
			`{"sql": "SELECT COUNT(*) FROM customer WHERE c_age >= ? GROUP BY c_region", "params": [30]}`,
		},
		{
			"grouped-join-avg",
			`{"sql": "SELECT AVG(o_amount) FROM customer JOIN orders WHERE c_age < 55 GROUP BY c_region"}`,
			`{"sql": "SELECT AVG(o_amount) FROM customer JOIN orders WHERE c_age < ? GROUP BY c_region", "params": [55]}`,
		},
		{
			"grouped-string-predicate",
			`{"sql": "SELECT COUNT(*) FROM customer WHERE c_region = 'EU' GROUP BY c_region"}`,
			`{"sql": "SELECT COUNT(*) FROM customer WHERE c_region = ? GROUP BY c_region", "params": ["EU"]}`,
		},
		{
			"ungrouped",
			`{"sql": "SELECT COUNT(*) FROM customer WHERE c_age >= 40"}`,
			`{"sql": "SELECT COUNT(*) FROM customer WHERE c_age >= ?", "params": [40]}`,
		},
		{
			"confidence-override",
			`{"sql": "SELECT COUNT(*) FROM customer WHERE c_age >= 40 GROUP BY c_region", "confidence": 0.8}`,
			`{"sql": "SELECT COUNT(*) FROM customer WHERE c_age >= ? GROUP BY c_region", "params": [40], "confidence": 0.8}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sResp, sRaw := rawPost(t, srv, "/query", tc.streamed)
			bResp, bRaw := rawPost(t, srv, "/query", tc.buffered)
			if sResp.StatusCode != http.StatusOK || bResp.StatusCode != http.StatusOK {
				t.Fatalf("status streamed=%d buffered=%d\nstreamed: %s\nbuffered: %s",
					sResp.StatusCode, bResp.StatusCode, sRaw, bRaw)
			}
			if got, want := stripElapsed(t, sRaw), stripElapsed(t, bRaw); got != want {
				t.Fatalf("streamed bytes differ from buffered\n  streamed: %s\n  buffered: %s", got, want)
			}
			// Both must be complete JSON documents ending in the buffered
			// encoder's trailing newline.
			for _, raw := range [][]byte{sRaw, bRaw} {
				if !bytes.HasSuffix(raw, []byte("}\n")) {
					t.Fatalf("response not newline-terminated: %q", raw)
				}
				var doc struct {
					Groups    []apiGroup `json:"groups"`
					ElapsedUS int64      `json:"elapsed_us"`
					Error     string     `json:"error"`
				}
				if err := json.Unmarshal(raw, &doc); err != nil {
					t.Fatalf("response not valid JSON: %v\n%s", err, raw)
				}
				if doc.Error != "" {
					t.Fatalf("unexpected error member: %s", doc.Error)
				}
			}
			// The streaming path must not buffer the whole response behind
			// a Content-Length: it goes out chunked.
			if len(sResp.TransferEncoding) == 0 || sResp.TransferEncoding[0] != "chunked" {
				t.Fatalf("streamed response not chunked: TransferEncoding=%v", sResp.TransferEncoding)
			}
		})
	}

	// A parse error on the streaming path still answers a regular 400
	// JSON error document (nothing has been streamed yet).
	resp, raw := rawPost(t, srv, "/query", `{"sql": "SELECT NONSENSE"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad sql: status %d, body %s", resp.StatusCode, raw)
	}
	var e apiError
	if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
		t.Fatalf("bad sql: malformed error body %s", raw)
	}
}
