// Command deepdb is the DeepDB command-line tool, a thin shell over the
// public deepdb package: it learns an RSPN ensemble over CSV data and
// answers cardinality and approximate aggregate queries against the model,
// without touching the data again at query time.
//
// Usage:
//
//	deepdb learn  -schema schema.json -data dir/ -out model.deepdb
//	deepdb estimate -model model.deepdb -sql "SELECT COUNT(*) FROM ..."
//	deepdb query  -model model.deepdb -sql "SELECT AVG(x) FROM ..."
//	deepdb explain -model model.deepdb -sql "SELECT COUNT(*) FROM ..."
//	deepdb serve  -model model.deepdb -addr :8491
//	deepdb demo
//
// The schema file is JSON in the shape of deepdb.Schema; query-side
// commands read the schema and per-table statistics persisted inside the
// model file, so the model alone is enough to serve estimates — no data
// directory needed. Pass -data (one <table>.csv per table with a header
// row) only for string-literal predicates (dictionary lookup) and -truth.
// `estimate` prints a cardinality with its confidence interval; `query`
// prints the approximate result (with group keys decoded through the
// dictionaries when data is attached); `explain` prints the execution
// plan without running the query.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/deepdb"
	"repro/internal/datagen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx := context.Background()
	var err error
	switch os.Args[1] {
	case "learn":
		err = cmdLearn(ctx, os.Args[2:])
	case "estimate":
		err = cmdQuery(ctx, os.Args[2:], modeEstimate)
	case "query":
		err = cmdQuery(ctx, os.Args[2:], modeQuery)
	case "explain":
		err = cmdQuery(ctx, os.Args[2:], modeExplain)
	case "serve":
		err = cmdServe(ctx, os.Args[2:])
	case "shard":
		err = cmdShard(ctx, os.Args[2:])
	case "wal":
		err = cmdWAL(os.Args[2:])
	case "demo":
		err = cmdDemo(ctx)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepdb:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: deepdb <learn|estimate|query|explain|serve|shard|wal|demo> [flags]
  learn    -schema schema.json -data dir -out model.deepdb [-budget 0.5] [-samples 100000] [-parallel 1]
  estimate -model model.deepdb -sql "SELECT COUNT(*) ..." [-data dir]
  query    -model model.deepdb -sql "SELECT AVG(col) ..." [-data dir]
  explain  -model model.deepdb -sql "SELECT COUNT(*) ..." [-data dir]
  serve    -model model.deepdb [-addr :8491] [-shards N] [-shard-peers urls] [-parallel N] [-cache N] [-wal dir] [-durability sync|batched|off] [-drift 0.2] [-request-timeout 30s] [-max-inflight N]
  shard    -model model.deepdb -shards N -index i [-addr :9301] [-data dir] [-wal dir]   (one shard replica process)
  wal      inspect|dump -dir wal-dir [-after N]   (read-only log examination)
  demo     (self-contained demonstration on synthetic data)
(-data is only needed for -truth; the model file carries the statistics
and dictionaries query serving needs, including string predicates)`)
}

func cmdLearn(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("learn", flag.ExitOnError)
	schemaPath := fs.String("schema", "", "schema JSON file")
	dataDir := fs.String("data", "", "directory with <table>.csv files")
	out := fs.String("out", "model.deepdb", "output model file")
	budget := fs.Float64("budget", 0.5, "ensemble budget factor (Section 5.3)")
	samples := fs.Int("samples", 100000, "max training samples per RSPN")
	parallel := fs.Int("parallel", 1, "RSPNs learned concurrently")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *schemaPath == "" || *dataDir == "" {
		return fmt.Errorf("-schema and -data are required")
	}
	s, err := deepdb.LoadSchema(*schemaPath)
	if err != nil {
		return err
	}
	db, err := deepdb.Learn(ctx, s, *dataDir,
		deepdb.WithBudget(*budget),
		deepdb.WithMaxSamples(*samples),
		deepdb.WithParallelism(*parallel))
	if err != nil {
		return err
	}
	fmt.Print(db.Describe())
	if err := db.Save(*out); err != nil {
		return err
	}
	fmt.Printf("model written to %s\n", *out)
	return nil
}

type queryMode int

const (
	modeEstimate queryMode = iota
	modeQuery
	modeExplain
)

func cmdQuery(ctx context.Context, args []string, mode queryMode) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dataDir := fs.String("data", "", "directory with <table>.csv files")
	model := fs.String("model", "model.deepdb", "model file from deepdb learn")
	sql := fs.String("sql", "", "query to answer")
	truth := fs.Bool("truth", false, "also compute the exact answer for comparison")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The model file carries the statistics query serving needs; -data is
	// only required for string-literal dictionaries and -truth.
	if *sql == "" {
		return fmt.Errorf("-sql is required")
	}
	if *truth && *dataDir == "" {
		return fmt.Errorf("-truth needs -data (exact execution reads the base tables)")
	}
	var opts []deepdb.Option
	if *dataDir != "" {
		opts = append(opts, deepdb.WithDataDir(*dataDir))
	}
	db, err := deepdb.Open(ctx, *model, opts...)
	if err != nil {
		return err
	}
	start := time.Now()
	switch mode {
	case modeExplain:
		plan, err := db.Explain(ctx, *sql)
		if err != nil {
			return err
		}
		fmt.Print(plan)
	case modeEstimate:
		est, err := db.EstimateCardinality(ctx, *sql)
		if err != nil {
			return err
		}
		fmt.Printf("estimated cardinality: %.1f  (95%% CI [%.1f, %.1f], %v)\n",
			est.Value, est.CILow, est.CIHigh, time.Since(start).Round(time.Microsecond))
	case modeQuery:
		res, err := db.Query(ctx, *sql)
		if err != nil {
			return err
		}
		fmt.Printf("approximate result (%v):\n", time.Since(start).Round(time.Microsecond))
		for _, g := range res.Groups {
			fmt.Printf("  %-24s %14.3f  (95%% CI [%.3f, %.3f])\n",
				labelOf(g), g.Value, g.CILow, g.CIHigh)
		}
	}
	if *truth && mode != modeExplain {
		res, err := db.Exact(ctx, *sql)
		if err != nil {
			return err
		}
		fmt.Println("exact result:")
		for _, g := range res.Groups {
			fmt.Printf("  %-24s %14.3f\n", labelOf(g), g.Value)
		}
	}
	return nil
}

// labelOf renders a group's decoded key for display.
func labelOf(g deepdb.Group) string {
	if len(g.Labels) == 0 {
		return "(all)"
	}
	out := ""
	for i, l := range g.Labels {
		if i > 0 {
			out += ", "
		}
		out += l
	}
	return out
}

// cmdDemo runs an end-to-end demonstration on synthetic IMDb data.
func cmdDemo(ctx context.Context) error {
	fmt.Println("generating synthetic IMDb-style data (4000 titles) ...")
	s, tabs := datagen.IMDb(datagen.IMDbConfig{Titles: 4000, Seed: 1})
	start := time.Now()
	db, err := deepdb.LearnDataset(ctx, s, tabs, deepdb.WithMaxSamples(30000))
	if err != nil {
		return err
	}
	fmt.Printf("ensemble learned in %v\n%s", time.Since(start).Round(time.Millisecond), db.Describe())
	demo := []string{
		"SELECT COUNT(*) FROM title WHERE t_production_year >= 2000",
		"SELECT COUNT(*) FROM title NATURAL JOIN cast_info WHERE ci_role_id = 1 AND t_kind_id = 1",
		"SELECT AVG(t_production_year) FROM title JOIN movie_companies WHERE mc_company_type_id = 2",
		"SELECT COUNT(*) FROM title GROUP BY t_kind_id",
	}
	for _, sql := range demo {
		fmt.Printf("\n%s\n", sql)
		start = time.Now()
		res, err := db.Query(ctx, sql)
		if err != nil {
			return err
		}
		lat := time.Since(start)
		truth, err := db.Exact(ctx, sql)
		if err != nil {
			return err
		}
		exactByKey := map[string]float64{}
		for _, tg := range truth.Groups {
			exactByKey[fmt.Sprint(tg.Key)] = tg.Value
		}
		for i, g := range res.Groups {
			exactVal := ""
			if v, ok := exactByKey[fmt.Sprint(g.Key)]; ok {
				exactVal = fmt.Sprintf("   exact: %.1f", v)
			}
			fmt.Printf("  group %v: estimate %.1f  CI [%.1f, %.1f]%s\n",
				g.Key, g.Value, g.CILow, g.CIHigh, exactVal)
			if i > 8 {
				fmt.Printf("  ... (%d groups total)\n", len(res.Groups))
				break
			}
		}
		fmt.Printf("  latency: %v\n", lat.Round(time.Microsecond))
	}
	return nil
}
