// Command deepdb is the DeepDB command-line tool: it learns an RSPN
// ensemble over CSV data and answers cardinality and approximate aggregate
// queries against it, without touching the data again at query time.
//
// Usage:
//
//	deepdb learn  -schema schema.json -data dir/ -out model.deepdb
//	deepdb estimate -schema schema.json -data dir/ -model model.deepdb -sql "SELECT COUNT(*) FROM ..."
//	deepdb query  -schema schema.json -data dir/ -model model.deepdb -sql "SELECT AVG(x) FROM ..."
//	deepdb demo
//
// The schema file is JSON in the shape of internal/schema.Schema. The data
// directory holds one <table>.csv per table with a header row. `estimate`
// prints a cardinality with its confidence interval; `query` prints the
// approximate result (with group keys decoded through the dictionaries).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/ensemble"
	"repro/internal/exact"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/table"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "learn":
		err = cmdLearn(os.Args[2:])
	case "estimate":
		err = cmdQuery(os.Args[2:], true)
	case "query":
		err = cmdQuery(os.Args[2:], false)
	case "demo":
		err = cmdDemo()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepdb:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: deepdb <learn|estimate|query|demo> [flags]
  learn    -schema schema.json -data dir -out model.deepdb [-budget 0.5] [-samples 100000]
  estimate -schema schema.json -data dir -model model.deepdb -sql "SELECT COUNT(*) ..."
  query    -schema schema.json -data dir -model model.deepdb -sql "SELECT AVG(col) ..."
  demo     (self-contained demonstration on synthetic data)`)
}

// loadSchema reads a schema JSON file.
func loadSchema(path string) (*schema.Schema, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s schema.Schema
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// loadTables reads <table>.csv for every schema table from dir.
func loadTables(s *schema.Schema, dir string) (map[string]*table.Table, error) {
	out := make(map[string]*table.Table, len(s.Tables))
	for _, meta := range s.Tables {
		path := filepath.Join(dir, meta.Name+".csv")
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		t, err := table.LoadCSV(meta, f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		out[meta.Name] = t
	}
	return out, nil
}

func cmdLearn(args []string) error {
	fs := flag.NewFlagSet("learn", flag.ExitOnError)
	schemaPath := fs.String("schema", "", "schema JSON file")
	dataDir := fs.String("data", "", "directory with <table>.csv files")
	out := fs.String("out", "model.deepdb", "output model file")
	budget := fs.Float64("budget", 0.5, "ensemble budget factor (Section 5.3)")
	samples := fs.Int("samples", 100000, "max training samples per RSPN")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *schemaPath == "" || *dataDir == "" {
		return fmt.Errorf("-schema and -data are required")
	}
	s, err := loadSchema(*schemaPath)
	if err != nil {
		return err
	}
	tabs, err := loadTables(s, *dataDir)
	if err != nil {
		return err
	}
	cfg := ensemble.DefaultConfig()
	cfg.BudgetFactor = *budget
	cfg.MaxSamples = *samples
	ens, err := ensemble.Build(s, tabs, cfg)
	if err != nil {
		return err
	}
	fmt.Print(ens.Describe())
	if err := ens.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("model written to %s\n", *out)
	return nil
}

func cmdQuery(args []string, cardinality bool) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	schemaPath := fs.String("schema", "", "schema JSON file")
	dataDir := fs.String("data", "", "directory with <table>.csv files")
	model := fs.String("model", "model.deepdb", "model file from deepdb learn")
	sql := fs.String("sql", "", "query to answer")
	truth := fs.Bool("truth", false, "also compute the exact answer for comparison")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *schemaPath == "" || *dataDir == "" || *sql == "" {
		return fmt.Errorf("-schema, -data and -sql are required")
	}
	s, err := loadSchema(*schemaPath)
	if err != nil {
		return err
	}
	tabs, err := loadTables(s, *dataDir)
	if err != nil {
		return err
	}
	ens, err := ensemble.LoadFile(*model, tabs)
	if err != nil {
		return err
	}
	resolve := makeResolver(tabs)
	q, err := query.Parse(*sql, resolve)
	if err != nil {
		return err
	}
	eng := core.New(ens)
	start := time.Now()
	if cardinality {
		est, err := eng.EstimateCardinality(q)
		if err != nil {
			return err
		}
		lo, hi := est.ConfidenceInterval(0.95)
		fmt.Printf("estimated cardinality: %.1f  (95%% CI [%.1f, %.1f], %v)\n",
			est.Value, lo, hi, time.Since(start).Round(time.Microsecond))
	} else {
		res, err := eng.Execute(q)
		if err != nil {
			return err
		}
		fmt.Printf("approximate result (%v):\n", time.Since(start).Round(time.Microsecond))
		for _, g := range res.Groups {
			key := decodeKey(tabs, q.GroupBy, g.Key)
			fmt.Printf("  %-24s %14.3f  (95%% CI [%.3f, %.3f])\n", key, g.Estimate.Value, g.CILow, g.CIHigh)
		}
	}
	if *truth {
		oracle := exact.New(s, tabs)
		res, err := oracle.Execute(q)
		if err != nil {
			return err
		}
		fmt.Println("exact result:")
		for _, g := range res.Groups {
			fmt.Printf("  %-24s %14.3f\n", decodeKey(tabs, q.GroupBy, g.Key), g.Value)
		}
	}
	return nil
}

// makeResolver resolves string literals through the base-table
// dictionaries.
func makeResolver(tabs map[string]*table.Table) query.Resolver {
	return func(column, literal string) (float64, error) {
		for _, t := range tabs {
			c := t.Column(column)
			if c == nil {
				continue
			}
			if code := c.Lookup(literal); code >= 0 {
				return float64(code), nil
			}
			return 0, fmt.Errorf("value %q not found in column %s", literal, column)
		}
		return 0, fmt.Errorf("unknown column %s", column)
	}
}

// decodeKey renders a group key, decoding categorical codes.
func decodeKey(tabs map[string]*table.Table, cols []string, key []float64) string {
	if len(key) == 0 {
		return "(all)"
	}
	out := ""
	for i, col := range cols {
		if i > 0 {
			out += ", "
		}
		decoded := fmt.Sprintf("%g", key[i])
		for _, t := range tabs {
			if c := t.Column(col); c != nil && c.DictSize() > 0 {
				if s := c.Decode(int(key[i])); s != "" {
					decoded = s
				}
				break
			}
		}
		out += fmt.Sprintf("%s=%s", col, decoded)
	}
	return out
}

// cmdDemo runs an end-to-end demonstration on synthetic IMDb data.
func cmdDemo() error {
	fmt.Println("generating synthetic IMDb-style data (4000 titles) ...")
	s, tabs := datagen.IMDb(datagen.IMDbConfig{Titles: 4000, Seed: 1})
	cfg := ensemble.DefaultConfig()
	cfg.MaxSamples = 30000
	start := time.Now()
	ens, err := ensemble.Build(s, tabs, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("ensemble learned in %v\n%s", time.Since(start).Round(time.Millisecond), ens.Describe())
	eng := core.New(ens)
	oracle := exact.New(s, tabs)
	demo := []string{
		"SELECT COUNT(*) FROM title WHERE t_production_year >= 2000",
		"SELECT COUNT(*) FROM title NATURAL JOIN cast_info WHERE ci_role_id = 1 AND t_kind_id = 1",
		"SELECT AVG(t_production_year) FROM title JOIN movie_companies WHERE mc_company_type_id = 2",
		"SELECT COUNT(*) FROM title GROUP BY t_kind_id",
	}
	for _, sql := range demo {
		q, err := query.Parse(sql, nil)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s\n", sql)
		start = time.Now()
		res, err := eng.Execute(q)
		if err != nil {
			return err
		}
		lat := time.Since(start)
		truth, err := oracle.Execute(q)
		if err != nil {
			return err
		}
		for i, g := range res.Groups {
			exactVal := ""
			for _, tg := range truth.Sorted() {
				if fmt.Sprint(tg.Key) == fmt.Sprint(g.Key) {
					exactVal = fmt.Sprintf("   exact: %.1f", tg.Value)
				}
			}
			fmt.Printf("  group %v: estimate %.1f  CI [%.1f, %.1f]%s\n",
				g.Key, g.Estimate.Value, g.CILow, g.CIHigh, exactVal)
			if i > 8 {
				fmt.Printf("  ... (%d groups total)\n", len(res.Groups))
				break
			}
		}
		fmt.Printf("  latency: %v\n", lat.Round(time.Microsecond))
	}
	return nil
}
