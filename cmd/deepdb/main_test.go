package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/ensemble"
	"repro/internal/exact"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/table"
)

// writeFixture generates a small data set, writes its schema JSON and CSVs
// to dir, and returns the paths.
func writeFixture(t *testing.T, dir string) (schemaPath, dataDir string) {
	t.Helper()
	s, tabs := datagen.IMDb(datagen.IMDbConfig{Titles: 400, Seed: 1})
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	schemaPath = filepath.Join(dir, "schema.json")
	if err := os.WriteFile(schemaPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir = filepath.Join(dir, "data")
	if err := os.Mkdir(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, tb := range tabs {
		f, err := os.Create(filepath.Join(dataDir, name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.WriteCSV(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return schemaPath, dataDir
}

func TestLoadSchemaAndTables(t *testing.T) {
	dir := t.TempDir()
	schemaPath, dataDir := writeFixture(t, dir)
	s, err := loadSchema(schemaPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tables) != 6 {
		t.Fatalf("schema tables = %d, want 6", len(s.Tables))
	}
	tabs, err := loadTables(s, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if tabs["title"].NumRows() != 400 {
		t.Fatalf("title rows = %d", tabs["title"].NumRows())
	}
}

func TestLoadSchemaErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := loadSchema(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := loadSchema(bad); err == nil {
		t.Fatal("expected error for invalid JSON")
	}
	invalid := filepath.Join(dir, "invalid.json")
	os.WriteFile(invalid, []byte(`{"Tables":[{"Name":"t","PrimaryKey":"nope","Columns":[{"Name":"a","Kind":0}]}]}`), 0o644)
	if _, err := loadSchema(invalid); err == nil {
		t.Fatal("expected validation error")
	}
}

// TestLearnQueryRoundTrip exercises the full CLI pipeline: load CSVs, build
// an ensemble, save it, reload it, and answer a parsed SQL query.
func TestLearnQueryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	schemaPath, dataDir := writeFixture(t, dir)
	s, err := loadSchema(schemaPath)
	if err != nil {
		t.Fatal(err)
	}
	tabs, err := loadTables(s, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ensemble.DefaultConfig()
	cfg.MaxSamples = 5000
	cfg.BudgetFactor = 0
	ens, err := ensemble.Build(s, tabs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(dir, "model.deepdb")
	if err := ens.SaveFile(modelPath); err != nil {
		t.Fatal(err)
	}
	// Reload against freshly loaded tables (as the CLI does). The loaded
	// tables lack the tuple-factor columns Build added, so re-derive them
	// by rebuilding the load path exactly like cmdQuery.
	tabs2, err := loadTables(s, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	ens2, err := ensemble.LoadFile(modelPath, tabs2)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(ens2)
	q, err := query.Parse("SELECT COUNT(*) FROM title WHERE t_production_year >= 2000", makeResolver(tabs2))
	if err != nil {
		t.Fatal(err)
	}
	est, err := eng.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := exact.New(s, tabs2).Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if qe := query.QError(est.Value, truth); qe > 2 {
		t.Fatalf("round-trip estimate q-error %.2f (est %.1f true %.1f)", qe, est.Value, truth)
	}
	// Updates must work on a loaded ensemble too (tuple-factor columns are
	// re-derived by Load).
	if err := ens2.Insert("cast_info", map[string]table.Value{
		"ci_id": table.Int(999999), "ci_t_id": table.Int(0), "ci_role_id": table.Int(1),
	}); err != nil {
		t.Fatalf("insert after load: %v", err)
	}
}

func TestMakeResolver(t *testing.T) {
	tabs, _ := figureTable()
	resolve := makeResolver(tabs)
	v, err := resolve("color", "red")
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("resolve(red) = %v", v)
	}
	if _, err := resolve("color", "chartreuse"); err == nil {
		t.Fatal("expected error for unknown literal")
	}
	if _, err := resolve("nope", "red"); err == nil {
		t.Fatal("expected error for unknown column")
	}
}

func TestDecodeKey(t *testing.T) {
	tabs, _ := figureTable()
	if got := decodeKey(tabs, nil, nil); got != "(all)" {
		t.Fatalf("empty key = %q", got)
	}
	got := decodeKey(tabs, []string{"color"}, []float64{1})
	if got != "color=blue" {
		t.Fatalf("decoded key = %q", got)
	}
}

// figureTable builds a one-table fixture with a categorical column.
func figureTable() (map[string]*table.Table, float64) {
	meta := &schema.Table{Name: "things", Columns: []schema.Column{
		{Name: "color", Kind: schema.CategoricalKind},
		{Name: "n", Kind: schema.IntKind},
	}}
	tb := table.New(meta)
	c := tb.Column("color")
	red := float64(c.Encode("red"))
	c.Encode("blue")
	tb.AppendRow(table.Float(red), table.Int(1))
	return map[string]*table.Table{"things": tb}, red
}
