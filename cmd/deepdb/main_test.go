package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/deepdb"
	"repro/internal/datagen"
)

// writeFixture generates a small data set, writes its schema JSON and CSVs
// to dir, and returns the paths.
func writeFixture(t *testing.T, dir string) (schemaPath, dataDir string) {
	t.Helper()
	s, tabs := datagen.IMDb(datagen.IMDbConfig{Titles: 400, Seed: 1})
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	schemaPath = filepath.Join(dir, "schema.json")
	if err := os.WriteFile(schemaPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir = filepath.Join(dir, "data")
	if err := os.Mkdir(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, tb := range tabs {
		f, err := os.Create(filepath.Join(dataDir, name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.WriteCSV(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return schemaPath, dataDir
}

func TestLoadSchemaAndTables(t *testing.T) {
	dir := t.TempDir()
	schemaPath, dataDir := writeFixture(t, dir)
	s, err := deepdb.LoadSchema(schemaPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tables) != 6 {
		t.Fatalf("schema tables = %d, want 6", len(s.Tables))
	}
	tabs, err := deepdb.LoadCSVDir(s, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if tabs["title"].NumRows() != 400 {
		t.Fatalf("title rows = %d", tabs["title"].NumRows())
	}
}

func TestLoadSchemaErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := deepdb.LoadSchema(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := deepdb.LoadSchema(bad); err == nil {
		t.Fatal("expected error for invalid JSON")
	}
	invalid := filepath.Join(dir, "invalid.json")
	os.WriteFile(invalid, []byte(`{"Tables":[{"Name":"t","PrimaryKey":"nope","Columns":[{"Name":"a","Kind":0}]}]}`), 0o644)
	if _, err := deepdb.LoadSchema(invalid); err == nil {
		t.Fatal("expected validation error")
	}
}

// TestLearnQueryRoundTrip exercises the full CLI pipeline through the
// facade: learn from CSVs, save the model, reopen it against the data
// directory, and answer a parsed SQL query.
func TestLearnQueryRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	schemaPath, dataDir := writeFixture(t, dir)
	s, err := deepdb.LoadSchema(schemaPath)
	if err != nil {
		t.Fatal(err)
	}
	db, err := deepdb.Learn(ctx, s, dataDir, deepdb.WithMaxSamples(5000), deepdb.WithBudget(0))
	if err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(dir, "model.deepdb")
	if err := db.Save(modelPath); err != nil {
		t.Fatal(err)
	}
	db2, err := deepdb.Open(ctx, modelPath, deepdb.WithDataDir(dataDir))
	if err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT COUNT(*) FROM title WHERE t_production_year >= 2000"
	est, err := db2.EstimateCardinality(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := db2.Exact(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if qe := deepdb.QError(est.Value, truth.Scalar()); qe > 2 {
		t.Fatalf("round-trip estimate q-error %.2f (est %.1f true %.1f)", qe, est.Value, truth.Scalar())
	}
	// Updates must work on a reopened model too (tuple-factor columns are
	// re-derived on open). Inserts are asynchronous: only Flush proves the
	// apply succeeded.
	if err := db2.Insert("cast_info", map[string]deepdb.Value{
		"ci_id": deepdb.Int(999999), "ci_t_id": deepdb.Int(0), "ci_role_id": deepdb.Int(1),
	}); err != nil {
		t.Fatalf("insert after open: %v", err)
	}
	if err := db2.Flush(ctx); err != nil {
		t.Fatalf("applying insert after open: %v", err)
	}
	defer db2.Close()
	// The plan for a model-covered query must render without error.
	if plan, err := db2.Explain(ctx, sql); err != nil || plan == "" {
		t.Fatalf("explain: %q, %v", plan, err)
	}
}

func TestResolver(t *testing.T) {
	db := figureDB(t)
	q, err := db.Parse("SELECT COUNT(*) FROM things WHERE color = 'red'")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 1 || q.Filters[0].Value != 0 {
		t.Fatalf("resolved filter = %+v", q.Filters)
	}
	if _, err := db.Parse("SELECT COUNT(*) FROM things WHERE color = 'chartreuse'"); err == nil {
		t.Fatal("expected error for unknown literal")
	}
	if _, err := db.Parse("SELECT COUNT(*) FROM things WHERE nope = 'red'"); err == nil {
		t.Fatal("expected error for unknown column")
	}
}

func TestLabelOf(t *testing.T) {
	if got := labelOf(deepdb.Group{}); got != "(all)" {
		t.Fatalf("empty key label = %q", got)
	}
	db := figureDB(t)
	res, err := db.Query(context.Background(), "SELECT COUNT(*) FROM things GROUP BY color")
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	for _, g := range res.Groups {
		labels[labelOf(g)] = true
	}
	if !labels["red"] || !labels["blue"] {
		t.Fatalf("decoded labels = %v", labels)
	}
}

// figureDB builds a one-table DB with a categorical column.
func figureDB(t *testing.T) *deepdb.DB {
	t.Helper()
	s := &deepdb.Schema{Tables: []*deepdb.TableDef{{
		Name: "things",
		Columns: []deepdb.ColumnDef{
			{Name: "color", Kind: deepdb.CategoricalKind},
			{Name: "n", Kind: deepdb.IntKind},
		},
	}}}
	tb := deepdb.NewTable(s.Table("things"))
	c := tb.Column("color")
	red := float64(c.Encode("red"))
	blue := float64(c.Encode("blue"))
	tb.AppendRow(deepdb.Float(red), deepdb.Int(1))
	tb.AppendRow(deepdb.Float(blue), deepdb.Int(2))
	db, err := deepdb.LearnDataset(context.Background(), s, deepdb.Dataset{"things": tb}, deepdb.WithExactLearner())
	if err != nil {
		t.Fatal(err)
	}
	return db
}
