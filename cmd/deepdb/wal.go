package main

// wal.go implements `deepdb wal`, the operator's read-only view into a
// write-ahead log directory. Both subcommands examine the segments without
// opening the log for writing, so they are safe to point at the WAL of a
// live server or at the remains of a crashed one:
//
//	deepdb wal inspect -dir wal/
//	    one JSON document: checkpoint/last LSN, record and byte totals,
//	    and per-segment detail including torn-tail bytes a recovery
//	    would truncate.
//	deepdb wal dump -dir wal/ [-after N]
//	    one JSON line per record with LSN above N (default 0 = all),
//	    each mutation group decoded into inserts/deletes.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/ensemble"
	"repro/internal/wal"
)

func cmdWAL(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: deepdb wal <inspect|dump> -dir <wal-dir>")
	}
	switch args[0] {
	case "inspect":
		return cmdWALInspect(args[1:])
	case "dump":
		return cmdWALDump(args[1:])
	default:
		return fmt.Errorf("unknown wal subcommand %q (want inspect or dump)", args[0])
	}
}

func cmdWALInspect(args []string) error {
	fs := flag.NewFlagSet("wal inspect", flag.ExitOnError)
	dir := fs.String("dir", "", "WAL directory to examine")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	info, err := wal.Inspect(*dir)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(info)
}

// walRecord is the JSON line shape of `deepdb wal dump`.
type walRecord struct {
	LSN       uint64        `json:"lsn"`
	Mutations []walMutation `json:"mutations"`
}

type walMutation struct {
	Op    string `json:"op"`
	Table string `json:"table"`
	// Values renders inserted cells; NULL cells are JSON null. Cells are
	// stored encoded, so categorical columns show dictionary codes.
	Values map[string]*float64 `json:"values,omitempty"`
	PK     *float64            `json:"pk,omitempty"`
}

func cmdWALDump(args []string) error {
	fs := flag.NewFlagSet("wal dump", flag.ExitOnError)
	dir := fs.String("dir", "", "WAL directory to examine")
	after := fs.Uint64("after", 0, "dump only records with LSN above this (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	enc := json.NewEncoder(os.Stdout)
	return wal.Dump(*dir, *after, func(lsn uint64, payload []byte) error {
		muts, err := wal.DecodeMutations(payload)
		if err != nil {
			return fmt.Errorf("lsn %d: %w", lsn, err)
		}
		rec := walRecord{LSN: lsn, Mutations: make([]walMutation, 0, len(muts))}
		for _, m := range muts {
			wm := walMutation{Table: m.Table}
			switch m.Op {
			case ensemble.OpInsert:
				wm.Op = "insert"
				wm.Values = make(map[string]*float64, len(m.Values))
				for col, v := range m.Values {
					if v.Null {
						wm.Values[col] = nil
					} else {
						f := v.F
						wm.Values[col] = &f
					}
				}
			case ensemble.OpDelete:
				wm.Op = "delete"
				pk := m.PK
				wm.PK = &pk
			default:
				wm.Op = fmt.Sprintf("op(%d)", m.Op)
			}
			rec.Mutations = append(rec.Mutations, wm)
		}
		return enc.Encode(rec)
	})
}
