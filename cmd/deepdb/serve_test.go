package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/deepdb"
)

// serveFixture learns a small model with a categorical column, saves it,
// and reopens it WITHOUT data — the serving configuration `deepdb serve
// -model file` runs in.
func serveFixture(t testing.TB) *deepdb.DB {
	t.Helper()
	ctx := context.Background()
	s := &deepdb.Schema{Tables: []*deepdb.TableDef{
		{
			Name:       "customer",
			PrimaryKey: "c_id",
			Columns: []deepdb.ColumnDef{
				{Name: "c_id", Kind: deepdb.IntKind},
				{Name: "c_age", Kind: deepdb.IntKind},
				{Name: "c_region", Kind: deepdb.CategoricalKind},
			},
		},
		{
			Name:       "orders",
			PrimaryKey: "o_id",
			Columns: []deepdb.ColumnDef{
				{Name: "o_id", Kind: deepdb.IntKind},
				{Name: "o_c_id", Kind: deepdb.IntKind},
				{Name: "o_amount", Kind: deepdb.FloatKind},
			},
			ForeignKeys: []deepdb.ForeignKey{{Column: "o_c_id", RefTable: "customer", RefColumn: "c_id"}},
		},
	}}
	cust := deepdb.NewTable(s.Table("customer"))
	ord := deepdb.NewTable(s.Table("orders"))
	region := cust.Column("c_region")
	regions := []string{"EU", "ASIA", "US"}
	oid := 0
	for i := 0; i < 1500; i++ {
		r := regions[i%3]
		cust.AppendRow(deepdb.Int(i), deepdb.Int(18+(i*7)%60), deepdb.Float(float64(region.Encode(r))))
		for k := 0; k <= i%3; k++ {
			ord.AppendRow(deepdb.Int(oid), deepdb.Int(i), deepdb.Float(float64(10+(oid*13)%90)))
			oid++
		}
	}
	db, err := deepdb.LearnDataset(ctx, s, deepdb.Dataset{"customer": cust, "orders": ord},
		deepdb.WithMaxSamples(3000))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.deepdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	modelOnly, err := deepdb.Open(ctx, path) // no data: fully data-free
	if err != nil {
		t.Fatal(err)
	}
	return modelOnly
}

// postJSON posts a request body and decodes the JSON response into out.
func postJSON(t *testing.T, srv *httptest.Server, path string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("%s: decoding response: %v", path, err)
	}
	return resp.StatusCode
}

type estimateResp struct {
	Value     float64 `json:"value"`
	Variance  float64 `json:"variance"`
	CILow     float64 `json:"ci_low"`
	CIHigh    float64 `json:"ci_high"`
	ElapsedUS int64   `json:"elapsed_us"`
	Error     string  `json:"error"`
}

type queryResp struct {
	Groups []struct {
		Key    []float64 `json:"key"`
		Labels []string  `json:"labels"`
		Value  float64   `json:"value"`
		CILow  float64   `json:"ci_low"`
		CIHigh float64   `json:"ci_high"`
	} `json:"groups"`
	ElapsedUS int64  `json:"elapsed_us"`
	Error     string `json:"error"`
}

// TestServeEndpoints drives every endpoint of the data-free server: all
// query classes including string-literal predicates (persisted
// dictionaries), parameterized requests, explain and health.
func TestServeEndpoints(t *testing.T) {
	db := serveFixture(t)
	srv := httptest.NewServer(newServeHandler(db, false))
	defer srv.Close()

	// /healthz reports the data-free configuration.
	var health struct {
		Status       string `json:"status"`
		Models       int    `json:"models"`
		DataAttached bool   `json:"data_attached"`
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Models == 0 || health.DataAttached {
		t.Fatalf("healthz = %+v", health)
	}

	// /estimate across query classes, incl. a string literal (needs the
	// persisted dictionaries) and a join (Theorem 2 or superset RSPN).
	for _, sql := range []string{
		"SELECT COUNT(*) FROM customer WHERE c_age >= 40",
		"SELECT COUNT(*) FROM customer WHERE c_region = 'EU'",
		"SELECT COUNT(*) FROM customer JOIN orders WHERE o_amount >= 50 AND c_region = 'ASIA'",
		"SELECT COUNT(*) FROM customer JOIN orders WHERE (c_age < 25 OR o_amount > 80)",
	} {
		var est estimateResp
		if code := postJSON(t, srv, "/estimate", apiRequest{SQL: sql}, &est); code != http.StatusOK {
			t.Fatalf("%s: status %d, error %q", sql, code, est.Error)
		}
		if est.Value < 0 || est.CIHigh < est.CILow {
			t.Fatalf("%s: implausible estimate %+v", sql, est)
		}
		// The endpoint must agree exactly with the library call.
		want, err := db.EstimateCardinality(context.Background(), sql)
		if err != nil {
			t.Fatal(err)
		}
		if est.Value != want.Value {
			t.Fatalf("%s: served %v != library %v", sql, est.Value, want.Value)
		}
	}

	// /query with GROUP BY: labels decode through persisted dictionaries.
	var qr queryResp
	if code := postJSON(t, srv, "/query",
		apiRequest{SQL: "SELECT COUNT(*) FROM customer GROUP BY c_region"}, &qr); code != http.StatusOK {
		t.Fatalf("group query status %d, error %q", code, qr.Error)
	}
	labels := map[string]bool{}
	for _, g := range qr.Groups {
		for _, l := range g.Labels {
			labels[l] = true
		}
	}
	if !labels["EU"] || !labels["ASIA"] || !labels["US"] {
		t.Fatalf("group labels not decoded data-free: %v", labels)
	}

	// Parameterized request with a string parameter.
	var pest estimateResp
	if code := postJSON(t, srv, "/estimate", apiRequest{
		SQL:    "SELECT COUNT(*) FROM customer WHERE c_age < ? AND c_region = ?",
		Params: []any{40, "EU"},
	}, &pest); code != http.StatusOK {
		t.Fatalf("parameterized estimate status %d, error %q", code, pest.Error)
	}
	lit, err := db.EstimateCardinality(context.Background(),
		"SELECT COUNT(*) FROM customer WHERE c_age < 40 AND c_region = 'EU'")
	if err != nil {
		t.Fatal(err)
	}
	if pest.Value != lit.Value {
		t.Fatalf("parameterized %v != literal %v", pest.Value, lit.Value)
	}

	// Per-request confidence widens the interval only.
	var wide estimateResp
	postJSON(t, srv, "/estimate", apiRequest{
		SQL: "SELECT COUNT(*) FROM customer WHERE c_age < 40", Confidence: 0.999}, &wide)
	var def estimateResp
	postJSON(t, srv, "/estimate", apiRequest{
		SQL: "SELECT COUNT(*) FROM customer WHERE c_age < 40"}, &def)
	if wide.Value != def.Value {
		t.Fatalf("confidence changed the estimate: %v vs %v", wide.Value, def.Value)
	}
	if def.Variance > 0 && (wide.CIHigh-wide.CILow) <= (def.CIHigh-def.CILow) {
		t.Fatalf("0.999 interval not wider: %+v vs %+v", wide, def)
	}

	// /explain names the compilation case.
	var ex struct {
		Plan  string `json:"plan"`
		Error string `json:"error"`
	}
	if code := postJSON(t, srv, "/explain",
		apiRequest{SQL: "SELECT COUNT(*) FROM customer WHERE c_age < 30"}, &ex); code != http.StatusOK {
		t.Fatalf("explain status %d, error %q", code, ex.Error)
	}
	if !strings.Contains(ex.Plan, "case") {
		t.Fatalf("explain plan missing compilation case:\n%s", ex.Plan)
	}

	// GET form and error handling.
	resp, err = http.Get(srv.URL + "/estimate?sql=" + "SELECT%20COUNT(*)%20FROM%20customer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET estimate status %d", resp.StatusCode)
	}
	var bad estimateResp
	if code := postJSON(t, srv, "/estimate", apiRequest{SQL: "SELECT NONSENSE"}, &bad); code != http.StatusBadRequest || bad.Error == "" {
		t.Fatalf("bad SQL: status %d, error %q", code, bad.Error)
	}
	var missing estimateResp
	if code := postJSON(t, srv, "/estimate", apiRequest{}, &missing); code != http.StatusBadRequest {
		t.Fatalf("missing sql: status %d", code)
	}
	var badConf estimateResp
	if code := postJSON(t, srv, "/estimate", apiRequest{
		SQL: "SELECT COUNT(*) FROM customer", Confidence: 95}, &badConf); code != http.StatusBadRequest ||
		!strings.Contains(badConf.Error, "confidence") {
		t.Fatalf("confidence=95: status %d, error %q, want 400", code, badConf.Error)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/estimate", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status %d, want 405", resp.StatusCode)
	}
}

// TestServeConcurrentLoad hammers the server from many goroutines — the
// serving contract is correct answers under concurrency on one shared,
// plan-cached DB (run under -race in CI).
func TestServeConcurrentLoad(t *testing.T) {
	t.Parallel()
	db := serveFixture(t)
	srv := httptest.NewServer(newServeHandler(db, false))
	defer srv.Close()
	want, err := db.EstimateCardinality(context.Background(),
		"SELECT COUNT(*) FROM customer WHERE c_age < 40 AND c_region = 'EU'")
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				body, _ := json.Marshal(apiRequest{
					SQL:    "SELECT COUNT(*) FROM customer WHERE c_age < ? AND c_region = ?",
					Params: []any{40, "EU"},
				})
				resp, err := http.Post(srv.URL+"/estimate", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var est estimateResp
				err = json.NewDecoder(resp.Body).Decode(&est)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if est.Value != want.Value {
					errc <- fmt.Errorf("client %d: served %v, want %v", c, est.Value, want.Value)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// BenchmarkServeEstimate measures the full HTTP round-trip of a
// parameterized /estimate request against the data-free server.
func BenchmarkServeEstimate(b *testing.B) {
	db := serveFixture(b)
	srv := httptest.NewServer(newServeHandler(db, false))
	defer srv.Close()
	body, _ := json.Marshal(apiRequest{
		SQL:    "SELECT COUNT(*) FROM customer WHERE c_age < ? AND c_region = ?",
		Params: []any{40, "EU"},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(srv.URL+"/estimate", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var est estimateResp
		if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if est.Error != "" {
			b.Fatal(est.Error)
		}
	}
}

// TestServePprofEndpoints: with the pprof overlay the debug endpoints
// respond and the API endpoints keep working through the wrapping mux.
func TestServePprofEndpoints(t *testing.T) {
	db := serveFixture(t)
	srv := httptest.NewServer(withPprofEndpoints(newServeHandler(db, false)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz through pprof mux: status %d", resp.StatusCode)
	}
}
