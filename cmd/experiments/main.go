// Command experiments regenerates the tables and figures of the DeepDB
// paper's evaluation on synthetic equivalents of its data sets.
//
// Usage:
//
//	experiments [-scale small|full] [-exp all|table1|table2|fig1|fig7|fig8|fig9|fig10|fig11|fig12|fig13|traintime]
//
// Each experiment prints rows mirroring the corresponding paper exhibit;
// EXPERIMENTS.md records paper-vs-measured for all of them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	scaleFlag := flag.String("scale", "full", "experiment scale: small or full")
	expFlag := flag.String("exp", "all", "comma-separated experiment ids, or all")
	flag.Parse()

	var scale bench.Scale
	switch *scaleFlag {
	case "small":
		scale = bench.SmallScale()
	case "full":
		scale = bench.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	suite := bench.NewSuite(scale)

	runners := []struct {
		id  string
		run func() (*bench.Report, error)
	}{
		{"fig1", suite.RunFigure1},
		{"table1", suite.RunTable1},
		{"fig7", suite.RunFigure7},
		{"table2", suite.RunTable2},
		{"fig8", suite.RunFigure8},
		{"traintime", suite.RunTrainingTime},
		{"fig9", suite.RunFigure9},
		{"fig10", suite.RunFigure10},
		{"fig11", suite.RunFigure11},
		{"fig12", suite.RunFigure12},
		{"fig13", suite.RunFigure13},
	}
	want := map[string]bool{}
	all := *expFlag == "all"
	for _, id := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(id)] = true
	}
	failed := false
	for _, r := range runners {
		if !all && !want[r.id] {
			continue
		}
		start := time.Now()
		rep, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			failed = true
			continue
		}
		fmt.Print(rep.String())
		fmt.Printf("(%s in %v)\n\n", r.id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
