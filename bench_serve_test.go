// Sharded-serving benchmarks: reader throughput and latency percentiles
// against the sharded router at increasing shard counts, and the
// hot-reload blip — reader p50/p99 while a background loop keeps swapping
// the model file through the snapshot-publication path. scripts/bench.sh
// parses these into BENCH_serve.json.
//
// Run with: go test -bench 'ShardedServe|ShardedHotReload' -benchmem
package repro

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/deepdb"
)

// shardedFixture learns the shared benchmark dataset behind a sharded
// router with (up to) n shards; the partitioner clamps to the member
// count, so the benchmark reports the effective shard count as a metric.
func shardedFixture(b *testing.B, n int) *deepdb.ShardedDB {
	b.Helper()
	s, data := updateDataset()
	db, err := deepdb.LearnDatasetSharded(context.Background(), s, data,
		deepdb.WithMaxSamples(4000), deepdb.WithShards(n))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// BenchmarkShardedServeQuery drives concurrent prepared estimates — the
// serving hot path — through routers of increasing shard count and
// reports qps plus p50/p99 per-request latency. The equivalence tests
// guarantee the answers are bit-identical across all of these layouts;
// this measures what the layout costs.
func BenchmarkShardedServeQuery(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			db := shardedFixture(b, n)
			ctx := context.Background()
			var mu sync.Mutex
			all := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				stmt, err := db.Prepare("SELECT COUNT(*) FROM orders WHERE o_amount >= ?")
				if err != nil {
					b.Fatal(err)
				}
				lats := make([]time.Duration, 0, 1024)
				i := 0
				for pb.Next() {
					start := time.Now()
					if _, err := stmt.Estimate(ctx, i%100); err != nil {
						b.Fatal(err)
					}
					lats = append(lats, time.Since(start))
					i++
				}
				mu.Lock()
				all = append(all, lats...)
				mu.Unlock()
			})
			b.StopTimer()
			if d := b.Elapsed(); d > 0 {
				b.ReportMetric(float64(b.N)/d.Seconds(), "qps")
			}
			b.ReportMetric(float64(db.Shards()), "shards")
			reportLatencyPercentiles(b, all)
		})
	}
}

// BenchmarkShardedHotReloadReader measures the hot-reload blip: one
// reader samples prepared-estimate latency while a background loop keeps
// reloading the model file. The snapshot-publication swap claims zero
// read downtime, so p99 here should stay in the same regime as the
// ShardedServeQuery baseline rather than spiking to reload latency.
func BenchmarkShardedHotReloadReader(b *testing.B) {
	db := shardedFixture(b, 2)
	path := filepath.Join(b.TempDir(), "model.deepdb")
	if err := db.Save(path); err != nil {
		b.Fatal(err)
	}
	var stop atomic.Bool
	var reloads atomic.Uint64
	done := make(chan error, 1)
	go func() {
		for !stop.Load() {
			if err := db.Reload(path); err != nil {
				done <- err
				return
			}
			reloads.Add(1)
		}
		done <- nil
	}()
	ctx := context.Background()
	stmt, err := db.Prepare("SELECT COUNT(*) FROM orders WHERE o_amount >= ?")
	if err != nil {
		b.Fatal(err)
	}
	lats := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := stmt.Estimate(ctx, i%100); err != nil {
			b.Fatal(err)
		}
		lats = append(lats, time.Since(start))
	}
	b.StopTimer()
	stop.Store(true)
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(reloads.Load()), "reloads")
	reportLatencyPercentiles(b, lats)
}
