// WAL and re-learning benchmarks: append throughput under each durability
// mode, log scan and end-to-end recovery speed, and reader latency while a
// drift-triggered re-learn hot-swaps ensemble members behind the serving
// snapshot. scripts/bench.sh parses these into BENCH_wal.json.
//
// Run with: go test -bench 'WALAppend|WALScan|WALRecovery|RelearnHotSwap' -benchmem
package repro

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/deepdb"
	"repro/internal/wal"
)

// BenchmarkWALAppend measures Insert throughput with the write-ahead log
// attached, one sub-benchmark per fsync policy. sync pays one fsync per
// insert; batched group-commits; off leaves flushing to the OS. The
// no-WAL baseline for comparison is BenchmarkUpdateApplyAsync.
func BenchmarkWALAppend(b *testing.B) {
	modes := []struct {
		name string
		mode deepdb.Durability
	}{
		{"sync", deepdb.DurabilitySync},
		{"batched", deepdb.DurabilityBatched},
		{"off", deepdb.DurabilityOff},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			db := updateFixture(b, deepdb.WithWAL(b.TempDir()), deepdb.WithDurability(m.mode))
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Insert("orders", orderRow(i)); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Flush(ctx); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			reportRowsPerSec(b)
		})
	}
}

// walStreamDir builds a log directory holding `records` single-insert
// groups with checkpoint 0, i.e. all of them live for replay.
func walStreamDir(b *testing.B, records int) string {
	b.Helper()
	dir := b.TempDir()
	db := updateFixture(b, deepdb.WithWAL(dir), deepdb.WithDurability(deepdb.DurabilityOff))
	for i := 0; i < records; i++ {
		if err := db.Insert("orders", orderRow(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Flush(context.Background()); err != nil {
		b.Fatal(err)
	}
	// Close without Save: the checkpoint stays at 0 and every record
	// remains live, like a crash would leave it.
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// BenchmarkWALScan measures the log-side half of recovery: sequentially
// reading and decoding every record of a 5000-record log (CRC checks
// included), without applying anything.
func BenchmarkWALScan(b *testing.B) {
	const records = 5000
	dir := walStreamDir(b, records)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := wal.Dump(dir, 0, func(lsn uint64, payload []byte) error {
			muts, err := wal.DecodeMutations(payload)
			if err != nil {
				return err
			}
			n += len(muts)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("scanned %d records, want %d", n, records)
		}
	}
	b.StopTimer()
	if d := b.Elapsed(); d > 0 {
		b.ReportMetric(float64(records)*float64(b.N)/d.Seconds(), "rows/s")
	}
}

// BenchmarkWALRecovery is the end-to-end cold start after a crash: learn
// over the base tables and replay 500 live records into the model. ns/op
// is the full recovery time, so the rows/s reported here is a lower bound
// on replay throughput (it includes the model learn; the apply path it
// exercises is the one BenchmarkUpdateApplyAsync measures in isolation).
func BenchmarkWALRecovery(b *testing.B) {
	const records = 500
	dir := walStreamDir(b, records)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := updateFixture(b, deepdb.WithWAL(dir))
		if got := db.UpdateStats().WAL.Replayed; got != records {
			b.Fatalf("replayed %d records, want %d", got, records)
		}
		b.StopTimer()
		if err := db.Close(); err != nil { // no Save: the log stays live
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	if d := b.Elapsed(); d > 0 {
		b.ReportMetric(float64(records)*float64(b.N)/d.Seconds(), "rows/s")
	}
}

// BenchmarkRelearnHotSwapReader measures reader p50/p99 while a background
// writer streams inserts and a low drift threshold keeps the re-learner
// rebuilding and hot-swapping members. One benchmark iteration is one
// observed hot-swap: readers query continuously until b.N swaps have
// completed, so the latency samples are guaranteed to bracket real swap
// publications. ns/op is therefore the length of a full trip→re-learn→swap
// cycle; the claim under test is that p50/p99 stay flat vs
// BenchmarkReaderLatencyDuringUpdates, which runs the same write stream
// with re-learning disabled.
func BenchmarkRelearnHotSwapReader(b *testing.B) {
	db := updateFixture(b, deepdb.WithDriftThreshold(0.02))
	ctx := context.Background()
	stmt, err := db.Prepare("SELECT COUNT(*) FROM orders WHERE o_amount >= ?")
	if err != nil {
		b.Fatal(err)
	}
	var stop atomic.Bool
	writerDone := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		for i := 0; !stop.Load(); i++ {
			if err := db.Insert("orders", orderRow(i)); err != nil {
				writerDone <- err
				return
			}
			if i == 0 {
				close(started)
			}
		}
		writerDone <- nil
	}()
	<-started
	target := db.UpdateStats().Relearns + uint64(b.N)
	deadline := time.Now().Add(2 * time.Minute)
	lats := make([]time.Duration, 0, 1<<16)
	b.ResetTimer()
	for i := 0; ; i++ {
		start := time.Now()
		if _, err := stmt.Estimate(ctx, i%100); err != nil {
			b.Fatal(err)
		}
		lats = append(lats, time.Since(start))
		if i%64 != 0 {
			continue
		}
		st := db.UpdateStats()
		if st.RelearnErrors > 0 {
			b.Fatalf("re-learn errors during bench: %d (%s)", st.RelearnErrors, st.LastRelearnError)
		}
		if st.Relearns >= target {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("only %d of %d re-learn swaps within deadline", st.Relearns, target)
		}
	}
	b.StopTimer()
	stop.Store(true)
	if err := <-writerDone; err != nil {
		b.Fatal(err)
	}
	if err := db.Flush(context.Background()); err != nil {
		b.Fatal(err)
	}
	reportLatencyPercentiles(b, lats)
	b.ReportMetric(float64(len(lats))/float64(b.N), "reads/swap")
}
