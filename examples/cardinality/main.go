// Cardinality estimation example: build a DeepDB model over an IMDb-style
// multi-table schema through the public facade and compare its join
// cardinality estimates with a Postgres-style histogram estimator against
// exact truth — the paper's core use case (Section 6.1).
//
// Run with: go run ./examples/cardinality
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/deepdb"
	"repro/internal/baselines"
	"repro/internal/datagen"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()

	// Synthetic IMDb: title star-joined with five referencing tables,
	// with planted correlations between year, kind and fanouts.
	s, tables := datagen.IMDb(datagen.IMDbConfig{Titles: 5000, Seed: 7})

	start := time.Now()
	db, err := deepdb.LearnDataset(ctx, s, tables, deepdb.WithMaxSamples(30000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DeepDB ensemble learned in %v (%d RSPNs)\n",
		time.Since(start).Round(time.Millisecond), len(db.Models()))

	pg, err := baselines.NewPostgres(s, db.Data())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-34s %10s %10s %10s %8s %8s\n",
		"query", "true", "DeepDB", "Postgres", "q(DD)", "q(PG)")
	var ddErrs, pgErrs []float64
	for _, n := range workload.JOBLight(db.Data(), 3)[:15] {
		truth, err := db.ExactQuery(ctx, n.Query)
		if err != nil {
			log.Fatal(err)
		}
		dd, err := db.EstimateCardinalityQuery(ctx, n.Query)
		if err != nil {
			log.Fatal(err)
		}
		pgEst, err := pg.EstimateCardinality(n.Query)
		if err != nil {
			log.Fatal(err)
		}
		qd := deepdb.QError(dd.Value, truth.Scalar())
		qp := deepdb.QError(pgEst, truth.Scalar())
		ddErrs = append(ddErrs, qd)
		pgErrs = append(pgErrs, qp)
		fmt.Printf("%-34s %10.0f %10.0f %10.0f %8.2f %8.2f\n",
			n.Label+" ("+fmt.Sprint(len(n.Query.Tables))+" tables)", truth.Scalar(), dd.Value, pgEst, qd, qp)
	}
	fmt.Printf("\nmedian q-error: DeepDB %.2f vs Postgres %.2f\n",
		median(ddErrs), median(pgErrs))
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := range cp {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	return cp[len(cp)/2]
}
