// Cardinality estimation example: build a DeepDB model over an IMDb-style
// multi-table schema through the public facade and compare its join
// cardinality estimates with a Postgres-style histogram estimator against
// exact truth — the paper's core use case (Section 6.1).
//
// Run with: go run ./examples/cardinality
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/deepdb"
	"repro/internal/baselines"
	"repro/internal/datagen"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()

	// Synthetic IMDb: title star-joined with five referencing tables,
	// with planted correlations between year, kind and fanouts.
	s, tables := datagen.IMDb(datagen.IMDbConfig{Titles: 5000, Seed: 7})

	start := time.Now()
	db, err := deepdb.LearnDataset(ctx, s, tables, deepdb.WithMaxSamples(30000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DeepDB ensemble learned in %v (%d RSPNs)\n",
		time.Since(start).Round(time.Millisecond), len(db.Models()))

	pg, err := baselines.NewPostgres(s, db.Data())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-34s %10s %10s %10s %8s %8s\n",
		"query", "true", "DeepDB", "Postgres", "q(DD)", "q(PG)")
	var ddErrs, pgErrs []float64
	queries := workload.JOBLight(db.Data(), 3)[:15]
	attached := make([]float64, 0, len(queries))
	for _, n := range queries {
		truth, err := db.ExactQuery(ctx, n.Query)
		if err != nil {
			log.Fatal(err)
		}
		dd, err := db.EstimateCardinalityQuery(ctx, n.Query)
		if err != nil {
			log.Fatal(err)
		}
		pgEst, err := pg.EstimateCardinality(n.Query)
		if err != nil {
			log.Fatal(err)
		}
		attached = append(attached, dd.Value)
		qd := deepdb.QError(dd.Value, truth.Scalar())
		qp := deepdb.QError(pgEst, truth.Scalar())
		ddErrs = append(ddErrs, qd)
		pgErrs = append(pgErrs, qp)
		fmt.Printf("%-34s %10.0f %10.0f %10.0f %8.2f %8.2f\n",
			n.Label+" ("+fmt.Sprint(len(n.Query.Tables))+" tables)", truth.Scalar(), dd.Value, pgEst, qd, qp)
	}
	fmt.Printf("\nmedian q-error: DeepDB %.2f vs Postgres %.2f\n",
		median(ddErrs), median(pgErrs))

	// Data-free serving: the saved model carries per-table statistics, so
	// a stateless query tier can reopen it without any data and produce
	// the same estimates — including multi-RSPN Theorem-2 combinations.
	modelPath := filepath.Join(os.TempDir(), "cardinality-example.deepdb")
	if err := db.Save(modelPath); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(modelPath)
	served, err := deepdb.Open(ctx, modelPath) // no WithDataDir / WithDataset
	if err != nil {
		log.Fatal(err)
	}
	mismatches := 0
	for i, n := range queries {
		modelOnly, err := served.EstimateCardinalityQuery(ctx, n.Query)
		if err != nil {
			log.Fatal(err)
		}
		if attached[i] != modelOnly.Value {
			mismatches++
		}
	}
	fmt.Printf("model-only serving (no data attached): %d/%d estimates differ from the data-attached path\n",
		mismatches, len(queries))
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := range cp {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	return cp[len(cp)/2]
}
