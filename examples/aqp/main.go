// AQP example: approximate analytics on the Star Schema Benchmark through
// the public deepdb facade — run the official S-queries against the model
// instead of the data, with confidence intervals, and compare latency and
// error against exact execution (Section 6.2 of the paper).
//
// Run with: go run ./examples/aqp
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/deepdb"
	"repro/internal/datagen"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	s, tables := datagen.SSB(datagen.SSBConfig{ScaleFactor: 0.01, Seed: 5})
	fmt.Printf("SSB data: %d lineorders\n", tables["lineorder"].NumRows())

	start := time.Now()
	db, err := deepdb.LearnDataset(ctx, s, tables, deepdb.WithMaxSamples(30000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ensemble learned once in %v; every ad-hoc query below is\n"+
		"answered from the model, never from the data\n\n",
		time.Since(start).Round(time.Millisecond))

	fmt.Printf("%-6s %10s %12s %12s %14s\n", "query", "groups", "rel err %", "model ms", "exact scan ms")
	for _, n := range workload.SSBQueries() {
		exactStart := time.Now()
		truth, err := db.ExactQuery(ctx, n.Query)
		if err != nil {
			log.Fatal(err)
		}
		exactMS := time.Since(exactStart)
		aqpStart := time.Now()
		res, err := db.ExecuteQuery(ctx, n.Query)
		if err != nil {
			log.Fatal(err)
		}
		aqpMS := time.Since(aqpStart)
		rel := deepdb.AvgRelativeError(res, truth) * 100
		fmt.Printf("%-6s %10d %12.2f %12.1f %14.1f\n",
			n.Label, len(truth.Groups), rel,
			float64(aqpMS.Microseconds())/1000, float64(exactMS.Microseconds())/1000)
	}

	// Show one result in detail, with confidence intervals.
	q := workload.SSBQueries()[3] // S2.1, grouped by year
	res, err := db.ExecuteQuery(ctx, q.Query)
	if err != nil {
		log.Fatal(err)
	}
	truth, _ := db.ExactQuery(ctx, q.Query)
	fmt.Printf("\n%s in detail (%s):\n", q.Label, q.Query)
	tm := map[string]float64{}
	for _, g := range truth.Groups {
		tm[fmt.Sprint(g.Key)] = g.Value
	}
	for _, g := range res.Groups {
		fmt.Printf("  year %v: estimate %14.0f  CI [%14.0f, %14.0f]  exact %14.0f\n",
			g.Key, g.Value, g.CILow, g.CIHigh, tm[fmt.Sprint(g.Key)])
	}
}
