// Quickstart: learn a DeepDB ensemble over a single table and answer
// COUNT / AVG / GROUP BY queries from the model, with confidence intervals,
// then absorb new rows without retraining.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/ensemble"
	"repro/internal/exact"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/table"
)

func main() {
	// 1. Define a schema: one customer table.
	s := &schema.Schema{Tables: []*schema.Table{{
		Name:       "customer",
		PrimaryKey: "c_id",
		Columns: []schema.Column{
			{Name: "c_id", Kind: schema.IntKind},
			{Name: "c_age", Kind: schema.IntKind},
			{Name: "c_region", Kind: schema.CategoricalKind},
			{Name: "c_income", Kind: schema.FloatKind},
		},
	}}}

	// 2. Generate some correlated data: older customers in EUROPE, income
	// grows with age.
	cust := table.New(s.Table("customer"))
	region := cust.Column("c_region")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		age := 18 + rng.Intn(70)
		r := "ASIA"
		if age > 50 && rng.Float64() < 0.7 {
			r = "EUROPE"
		} else if rng.Float64() < 0.3 {
			r = "EUROPE"
		}
		income := float64(age)*900 + rng.Float64()*20000
		cust.AppendRow(table.Int(i), table.Int(age),
			table.Float(float64(region.Encode(r))), table.Float(income))
	}
	tables := map[string]*table.Table{"customer": cust}

	// 3. Learn the ensemble (one RSPN here). This is the only training
	// DeepDB ever needs — no workload, no labels.
	start := time.Now()
	ens, err := ensemble.Build(s, tables, ensemble.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned in %v\n%s\n", time.Since(start).Round(time.Millisecond), ens.Describe())

	// 4. Ask queries. The engine never touches the data again.
	eng := core.New(ens)
	oracle := exact.New(s, tables)
	eu := float64(region.Lookup("EUROPE"))
	queries := []query.Query{
		{Aggregate: query.Count, Tables: []string{"customer"},
			Filters: []query.Predicate{{Column: "c_region", Op: query.Eq, Value: eu},
				{Column: "c_age", Op: query.Lt, Value: 30}}},
		{Aggregate: query.Avg, AggColumn: "c_income", Tables: []string{"customer"},
			Filters: []query.Predicate{{Column: "c_age", Op: query.Ge, Value: 60}}},
		{Aggregate: query.Sum, AggColumn: "c_income", Tables: []string{"customer"},
			GroupBy: []string{"c_region"}},
	}
	for _, q := range queries {
		res, err := eng.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := oracle.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", q)
		for _, g := range res.Groups {
			fmt.Printf("  estimate %.1f  CI [%.1f, %.1f]\n", g.Estimate.Value, g.CILow, g.CIHigh)
		}
		fmt.Printf("  avg relative error vs exact: %.2f%%\n\n",
			query.AvgRelativeError(res.ToResult(), truth)*100)
	}

	// 5. Updates: insert 5000 young rich ASIA customers; no retraining.
	for i := 0; i < 5000; i++ {
		if err := ens.Insert("customer", map[string]table.Value{
			"c_id":     table.Int(100000 + i),
			"c_age":    table.Int(20 + rng.Intn(5)),
			"c_region": table.Float(float64(region.Lookup("ASIA"))),
			"c_income": table.Float(90000),
		}); err != nil {
			log.Fatal(err)
		}
	}
	q := query.Query{Aggregate: query.Count, Tables: []string{"customer"},
		Filters: []query.Predicate{{Column: "c_income", Op: query.Gt, Value: 85000}}}
	res, _ := eng.Execute(q)
	truth, _ := oracle.Execute(q)
	fmt.Printf("after 5000 inserts: %s\n  estimate %.1f, exact %.1f\n",
		q, res.Groups[0].Estimate.Value, truth.Scalar())
}
