// Quickstart: learn a DeepDB model over a single table through the public
// deepdb facade and answer COUNT / AVG / GROUP BY queries from the model,
// with confidence intervals, then absorb new rows without retraining.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/deepdb"
)

func main() {
	ctx := context.Background()

	// 1. Define a schema: one customer table.
	s := &deepdb.Schema{Tables: []*deepdb.TableDef{{
		Name:       "customer",
		PrimaryKey: "c_id",
		Columns: []deepdb.ColumnDef{
			{Name: "c_id", Kind: deepdb.IntKind},
			{Name: "c_age", Kind: deepdb.IntKind},
			{Name: "c_region", Kind: deepdb.CategoricalKind},
			{Name: "c_income", Kind: deepdb.FloatKind},
		},
	}}}

	// 2. Generate some correlated data: older customers in EUROPE, income
	// grows with age.
	cust := deepdb.NewTable(s.Table("customer"))
	region := cust.Column("c_region")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		age := 18 + rng.Intn(70)
		r := "ASIA"
		if age > 50 && rng.Float64() < 0.7 {
			r = "EUROPE"
		} else if rng.Float64() < 0.3 {
			r = "EUROPE"
		}
		income := float64(age)*900 + rng.Float64()*20000
		cust.AppendRow(deepdb.Int(i), deepdb.Int(age),
			deepdb.Float(float64(region.Encode(r))), deepdb.Float(income))
	}

	// 3. Learn the model (one RSPN here). This is the only training DeepDB
	// ever needs — no workload, no labels.
	start := time.Now()
	db, err := deepdb.LearnDataset(ctx, s, deepdb.Dataset{"customer": cust})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned in %v\n%s\n", time.Since(start).Round(time.Millisecond), db.Describe())

	// 4. Ask SQL. The engine never touches the data again; string literals
	// are resolved through the dictionaries automatically.
	queries := []string{
		"SELECT COUNT(*) FROM customer WHERE c_region = 'EUROPE' AND c_age < 30",
		"SELECT AVG(c_income) FROM customer WHERE c_age >= 60",
		"SELECT SUM(c_income) FROM customer GROUP BY c_region",
	}
	for _, sql := range queries {
		res, err := db.Query(ctx, sql)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := db.Exact(ctx, sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", sql)
		for _, g := range res.Groups {
			fmt.Printf("  estimate %.1f  CI [%.1f, %.1f]\n", g.Value, g.CILow, g.CIHigh)
		}
		fmt.Printf("  avg relative error vs exact: %.2f%%\n\n",
			deepdb.AvgRelativeError(res, truth)*100)
	}

	// 5. Prepared statements: parse, validate and compile the plan once,
	// then execute with different parameter bindings. Numbers bind
	// numeric placeholders; strings resolve through the dictionaries.
	stmt, err := db.Prepare("SELECT COUNT(*) FROM customer WHERE c_region = ? AND c_age < ?")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range [][]any{{"EUROPE", 30}, {"ASIA", 30}, {"EUROPE", 65}} {
		est, err := stmt.Estimate(ctx, p...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("prepared %v: estimate %.1f  CI [%.1f, %.1f]\n", p, est.Value, est.CILow, est.CIHigh)
	}
	// A whole batch runs under one lock and one plan lookup; a per-call
	// option widens the intervals for this execution only.
	batch, err := stmt.ExecBatch(ctx,
		[][]any{{"EUROPE", 25}, {"EUROPE", 45}, {"EUROPE", 85}}, deepdb.AtConfidence(0.99))
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range batch {
		fmt.Printf("batch[%d]: %.1f  99%% CI [%.1f, %.1f]\n",
			i, res.Scalar(), res.Groups[0].CILow, res.Groups[0].CIHigh)
	}
	fmt.Println()

	// 6. Updates: insert 5000 young rich ASIA customers; no retraining.
	// Inserts are enqueued and applied in batches off the query path;
	// Flush waits until they are published (read-your-writes), and cached
	// plans are invalidated automatically.
	for i := 0; i < 5000; i++ {
		if err := db.Insert("customer", map[string]deepdb.Value{
			"c_id":     deepdb.Int(100000 + i),
			"c_age":    deepdb.Int(20 + rng.Intn(5)),
			"c_region": deepdb.Float(float64(region.Lookup("ASIA"))),
			"c_income": deepdb.Float(90000),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	sql := "SELECT COUNT(*) FROM customer WHERE c_income > 85000"
	res, _ := db.Query(ctx, sql)
	truth, _ := db.Exact(ctx, sql)
	fmt.Printf("after 5000 inserts: %s\n  estimate %.1f, exact %.1f\n",
		sql, res.Scalar(), truth.Scalar())
}
