// Data exploration example: the paper's Section 8 points out that "SPNs
// naturally provide a notion of correlated clusters that can also be used
// for suggesting interesting patterns in data exploration". This example
// learns an ensemble over the Flights data and prints the top-level row
// clusters each RSPN discovered — population shares and the attributes
// that make each cluster distinctive — without running a single query.
//
// Run with: go run ./examples/explore
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/ensemble"
	"repro/internal/schema"
	"repro/internal/table"
)

func main() {
	// A customer base with two planted populations: young budget ASIA
	// shoppers and older premium EUROPE shoppers.
	s := &schema.Schema{Tables: []*schema.Table{{
		Name: "customer", PrimaryKey: "c_id",
		Columns: []schema.Column{
			{Name: "c_id", Kind: schema.IntKind},
			{Name: "c_age", Kind: schema.IntKind},
			{Name: "c_region", Kind: schema.IntKind},
			{Name: "c_spend", Kind: schema.FloatKind},
		},
	}}}
	cust := table.New(s.Table("customer"))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		if rng.Float64() < 0.35 {
			cust.AppendRow(table.Int(i), table.Int(55+rng.Intn(30)),
				table.Int(0), table.Float(4000+rng.Float64()*3000))
		} else {
			cust.AppendRow(table.Int(i), table.Int(18+rng.Intn(20)),
				table.Int(1), table.Float(200+rng.Float64()*500))
		}
	}
	tables := map[string]*table.Table{"customer": cust}
	cfg := ensemble.DefaultConfig()
	cfg.MaxSamples = 20000
	ens, err := ensemble.Build(s, tables, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range ens.RSPNs {
		fmt.Printf("RSPN over %s — discovered row clusters:\n", strings.Join(r.Tables, " |x| "))
		for i, c := range r.Model.Clusters() {
			fmt.Printf("  cluster %d: %.1f%% of rows\n", i+1, c.Weight*100)
			shown := 0
			for _, col := range c.Columns {
				if strings.HasPrefix(col.Name, "__") || col.Distinctive < 0.15 {
					continue
				}
				fmt.Printf("    %-14s mean %8.1f  (%.1f σ from population", col.Name, col.Mean, col.Distinctive)
				if col.TopShare > 0.3 {
					fmt.Printf("; top value %g covers %.0f%%", col.TopValue, col.TopShare*100)
				}
				fmt.Println(")")
				shown++
				if shown >= 4 {
					break
				}
			}
			if shown == 0 {
				fmt.Println("    (no attribute deviates notably from the population)")
			}
		}
	}
	fmt.Println("\nThese clusters come straight from the learned model's sum nodes —")
	fmt.Println("the same structure that answers COUNT/AVG/SUM queries in microseconds.")
}
