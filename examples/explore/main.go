// Data exploration example: the paper's Section 8 points out that "SPNs
// naturally provide a notion of correlated clusters that can also be used
// for suggesting interesting patterns in data exploration". This example
// learns a model through the public facade and prints the top-level row
// clusters each RSPN discovered — population shares and the attributes
// that make each cluster distinctive — without running a single query.
//
// Run with: go run ./examples/explore
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/deepdb"
)

func main() {
	// A customer base with two planted populations: young budget ASIA
	// shoppers and older premium EUROPE shoppers.
	s := &deepdb.Schema{Tables: []*deepdb.TableDef{{
		Name: "customer", PrimaryKey: "c_id",
		Columns: []deepdb.ColumnDef{
			{Name: "c_id", Kind: deepdb.IntKind},
			{Name: "c_age", Kind: deepdb.IntKind},
			{Name: "c_region", Kind: deepdb.IntKind},
			{Name: "c_spend", Kind: deepdb.FloatKind},
		},
	}}}
	cust := deepdb.NewTable(s.Table("customer"))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		if rng.Float64() < 0.35 {
			cust.AppendRow(deepdb.Int(i), deepdb.Int(55+rng.Intn(30)),
				deepdb.Int(0), deepdb.Float(4000+rng.Float64()*3000))
		} else {
			cust.AppendRow(deepdb.Int(i), deepdb.Int(18+rng.Intn(20)),
				deepdb.Int(1), deepdb.Float(200+rng.Float64()*500))
		}
	}
	db, err := deepdb.LearnDataset(context.Background(), s,
		deepdb.Dataset{"customer": cust}, deepdb.WithMaxSamples(20000))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range db.Models() {
		fmt.Printf("RSPN over %s — discovered row clusters:\n", strings.Join(r.Tables, " |x| "))
		for i, c := range r.Model.Clusters() {
			fmt.Printf("  cluster %d: %.1f%% of rows\n", i+1, c.Weight*100)
			shown := 0
			for _, col := range c.Columns {
				if strings.HasPrefix(col.Name, "__") || col.Distinctive < 0.15 {
					continue
				}
				fmt.Printf("    %-14s mean %8.1f  (%.1f σ from population", col.Name, col.Mean, col.Distinctive)
				if col.TopShare > 0.3 {
					fmt.Printf("; top value %g covers %.0f%%", col.TopValue, col.TopShare*100)
				}
				fmt.Println(")")
				shown++
				if shown >= 4 {
					break
				}
			}
			if shown == 0 {
				fmt.Println("    (no attribute deviates notably from the population)")
			}
		}
	}
	fmt.Println("\nThese clusters come straight from the learned model's sum nodes —")
	fmt.Println("the same structure that answers COUNT/AVG/SUM queries in microseconds.")
}
