// ML tasks example: use the very same RSPN that answers AQP queries as a
// free regression and classification model on the Flights data set
// (Section 4.3 / Experiment 3 of the paper) — no additional training. The
// model comes from the public deepdb facade; the internal/ml wrappers
// consume it read-only.
//
// Run with: go run ./examples/mltasks
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/deepdb"
	"repro/internal/datagen"
	"repro/internal/ml"
)

func main() {
	s, tables := datagen.Flights(datagen.FlightsConfig{Rows: 40000, Seed: 3})
	db, err := deepdb.LearnDataset(context.Background(), s, tables, deepdb.WithMaxSamples(30000))
	if err != nil {
		log.Fatal(err)
	}
	r := db.Model("flights")
	flights := db.Data()["flights"]
	n := flights.NumRows()
	testFrom := n * 9 / 10

	// Regression: predict arrival delay from departure delay and taxi-out.
	features := []string{"f_dep_delay", "f_taxi_out"}
	reg, err := ml.NewRSPNRegressor(r, "f_arr_delay", features)
	if err != nil {
		log.Fatal(err)
	}
	xs, err := flights.Matrix(features, nil)
	if err != nil {
		log.Fatal(err)
	}
	target := flights.Column("f_arr_delay")
	var preds, truths []float64
	start := time.Now()
	for i := testFrom; i < n; i++ {
		p, err := reg.Predict(xs[i])
		if err != nil {
			log.Fatal(err)
		}
		preds = append(preds, p)
		truths = append(truths, target.Data[i])
	}
	elapsed := time.Since(start)
	fmt.Printf("regression f_arr_delay ~ (dep_delay, taxi_out):\n")
	fmt.Printf("  RMSE %.2f over %d test rows (%.1f µs/prediction, 0s training)\n",
		ml.RMSE(preds, truths), len(preds),
		float64(elapsed.Microseconds())/float64(len(preds)))

	// Baseline for context: a freshly trained regression tree.
	trainX, trainY := xs[:testFrom], target.Data[:testFrom]
	start = time.Now()
	tree, err := ml.FitTree(trainX, trainY, ml.DefaultTreeConfig())
	if err != nil {
		log.Fatal(err)
	}
	fitTime := time.Since(start)
	var tp []float64
	for i := testFrom; i < n; i++ {
		tp = append(tp, tree.Predict(xs[i]))
	}
	fmt.Printf("  (regression tree: RMSE %.2f, but %v training)\n\n", ml.RMSE(tp, truths), fitTime.Round(time.Millisecond))

	// Classification: most probable carrier given route and delay profile.
	clf, err := ml.NewRSPNClassifier(r, "f_carrier", []string{"f_origin", "f_dep_delay"})
	if err != nil {
		log.Fatal(err)
	}
	feat2, err := flights.Matrix([]string{"f_origin", "f_dep_delay"}, nil)
	if err != nil {
		log.Fatal(err)
	}
	carrier := flights.Column("f_carrier")
	hits, total := 0, 0
	for i := testFrom; i < testFrom+2000 && i < n; i++ {
		p, err := clf.Predict(feat2[i])
		if err != nil {
			log.Fatal(err)
		}
		if p == carrier.Data[i] {
			hits++
		}
		total++
	}
	fmt.Printf("classification f_carrier ~ (origin, dep_delay):\n")
	fmt.Printf("  accuracy %.1f%% over %d rows (majority class baseline would be lower;\n"+
		"  14 carriers, zipf-skewed)\n", 100*float64(hits)/float64(total), total)
}
